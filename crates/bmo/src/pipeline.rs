//! The functional BMO pipeline, composed from a [`BmoStack`].
//!
//! [`BmoPipeline`] applies a write's backend operations *functionally* and
//! returns the exact set of NVM line writes the memory controller must
//! persist ([`WriteEffects`]). Which stages run — dedup slot allocation,
//! payload compression, counter-mode encryption + MAC, SECDED check bytes,
//! the Merkle tree over the metadata region, Start-Gap wear-leveling,
//! oblivious frame relocation — is decided entirely by the stack's declared
//! [`Transform`]s: the pipeline contains no per-BMO wiring of its own, so
//! any subset and ordering selectable by [`BmoStack`] runs end-to-end,
//! including crash recovery ([`BmoPipeline::recover_stack`]).
//!
//! The timing of the same operations is modeled separately by
//! [`crate::engine`] on the stack's composed dependency graph; keeping the
//! two in lock-step lets integration tests assert that Janus's
//! pre-execution never changes functional results.
//!
//! Frame indirection: a slot's payload lives at physical frame
//! `wear(oram(slot))` — the ORAM position map relocates slots obliviously,
//! Start-Gap rotates frames to level wear, and both default to the identity
//! when their BMO is absent, which keeps the default paper stack's NVM
//! layout byte-compatible with the original hard-wired pipeline.

use janus_crypto::ctr::line_mac;
use janus_crypto::FingerprintAlgo;
use janus_nvm::addr::LineAddr;
use janus_nvm::line::Line;
use janus_nvm::store::LineStore;

use crate::compression::{compress, decompress, Compressed, Scheme};
use crate::dedup::DedupStore;
use crate::encryption::EncryptionEngine;
use crate::integrity::{MerkleTree, NodeHash};
use crate::metadata::{
    frame_data_addr, leaf_index_of_meta_line, mac_addr_of_slot, meta_loc_of_logical,
    meta_loc_of_slot, oram_map_loc, MetaEntry, MetadataStore, DATA_LINES, ENTRIES_PER_LINE,
    META_BASE, META_LINES, ORAM_MAP_BASE, ORAM_REG_ADDR, SLOT_LINES, WEAR_REG_ADDR,
};
use crate::stack::{BmoStack, Transform};
use crate::wear::StartGap;

/// Merkle-tree height covering the metadata region (8⁸ = 2²⁴ leaves =
/// `META_LINES`).
pub const TREE_HEIGHT: u32 = 8;

/// Writes between Start-Gap movements when wear-leveling is stacked (the
/// paper's citation uses 100; we move more often so short tests exercise
/// gap copies).
pub const WEAR_INTERVAL: u64 = 64;

/// The default memory encryption key (also used by the memory controller
/// when no explicit key is configured).
pub const DEFAULT_KEY: [u8; 16] = *b"janus-memory-key";

/// Byte offset of the SECDED check bytes within a slot's auxiliary line
/// (after the 20-byte MAC).
const AUX_ECC_OFFSET: usize = 20;
/// Byte offset of the compression scheme tag within the auxiliary line.
const AUX_COMP_TAG_OFFSET: usize = 28;

/// Everything a single logical-line write changes in NVM.
#[derive(Clone, Debug)]
pub struct WriteEffects {
    /// Whether the dedup BMO cancelled the data write.
    pub dup: bool,
    /// The slot now holding this line's value.
    pub slot: u64,
    /// A slot freed by dropping the line's previous value, if any.
    pub freed_slot: Option<u64>,
    /// The NVM lines to persist (payload, metadata lines, auxiliary line).
    /// These must persist atomically with the root update (metadata
    /// atomicity, §4.3.2). The root itself is read from
    /// [`BmoPipeline::root`], which folds pending leaf updates in lazily —
    /// eagerly recomputing it per write made the root path the hot-loop
    /// bottleneck.
    pub line_writes: Vec<(LineAddr, Line)>,
}

/// Why a verified read or recovery failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IntegrityError {
    /// Payload/counter MAC mismatch.
    MacMismatch {
        /// Offending slot.
        slot: u64,
    },
    /// A metadata line failed Merkle verification.
    TamperedMetadata {
        /// Offending metadata line.
        line: LineAddr,
    },
    /// Metadata is structurally inconsistent (e.g. remap to a slot without
    /// a counter).
    MetadataCorrupt {
        /// Human-readable description.
        what: String,
    },
    /// Recomputed root does not match the secure register.
    RootMismatch,
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::MacMismatch { slot } => write!(f, "MAC mismatch on slot {slot}"),
            IntegrityError::TamperedMetadata { line } => {
                write!(f, "metadata line {line} failed Merkle verification")
            }
            IntegrityError::MetadataCorrupt { what } => write!(f, "corrupt metadata: {what}"),
            IntegrityError::RootMismatch => write!(f, "merkle root does not match secure register"),
        }
    }
}

impl std::error::Error for IntegrityError {}

/// Which functional stages the stack enables (derived once from the
/// members' [`Transform`] declarations).
#[derive(Clone, Copy, Debug, Default)]
struct Caps {
    dedup: bool,
    compress: bool,
    encrypt: bool,
    ecc: bool,
    merkle: bool,
    wear: bool,
    oram: bool,
}

impl Caps {
    fn of(stack: &BmoStack) -> Caps {
        Caps {
            dedup: stack.has_transform(Transform::DedupSlots),
            compress: stack.has_transform(Transform::CompressPayload),
            encrypt: stack.has_transform(Transform::EncryptPayload),
            ecc: stack.has_transform(Transform::EccPayload),
            merkle: stack.has_transform(Transform::MerkleMetadata),
            wear: stack.has_transform(Transform::WearRemap),
            oram: stack.has_transform(Transform::OramRelocate),
        }
    }
}

/// Volatile per-slot auxiliary state mirroring the slot's auxiliary line.
#[derive(Clone, Copy, Debug, Default)]
struct SlotAux {
    mac: Option<[u8; 20]>,
    comp_tag: u8,
}

/// Persistent ORAM relocation state: the epoch counter feeding the partner
/// generator and the position map (both mirrored to NVM lines).
#[derive(Clone, Debug)]
struct OramState {
    epoch: u64,
    map: LineStore,
}

fn push_write(writes: &mut Vec<(LineAddr, Line)>, addr: LineAddr, value: Line) {
    if let Some(e) = writes.iter_mut().find(|(a, _)| *a == addr) {
        e.1 = value;
    } else {
        writes.push((addr, value));
    }
}

/// The functional pipeline. See the module docs.
///
/// # Example
///
/// ```
/// use janus_bmo::pipeline::BmoPipeline;
/// use janus_crypto::FingerprintAlgo;
/// use janus_nvm::{addr::LineAddr, line::Line};
///
/// let mut p = BmoPipeline::new(FingerprintAlgo::Md5);
/// let fx = p.write(LineAddr(1), Line::splat(7));
/// assert!(!fx.dup);
/// let fx2 = p.write(LineAddr(2), Line::splat(7));
/// assert!(fx2.dup, "same value dedups");
/// assert_eq!(p.read_verified(LineAddr(2)).unwrap(), Line::splat(7));
/// ```
#[derive(Clone, Debug)]
pub struct BmoPipeline {
    stack: BmoStack,
    caps: Caps,
    meta: MetadataStore,
    tree: Option<MerkleTree>,
    dedup: Option<DedupStore>,
    enc: Option<EncryptionEngine>,
    /// Next fresh write counter (starts at 1; 0 means "never written").
    next_counter: u64,
    /// Volatile mirror of stored payloads, keyed by physical frame address.
    stored: LineStore,
    aux: janus_sim::hash::FxHashMap<u64, SlotAux>,
    wear: Option<StartGap>,
    oram: Option<OramState>,
    /// Recycled line-write buffer: [`BmoPipeline::write`] takes it, the
    /// caller hands it back via [`BmoPipeline::recycle`], so the
    /// steady-state write path performs no heap allocation.
    spare: Vec<(LineAddr, Line)>,
}

impl BmoPipeline {
    /// Creates an empty default-stack (paper trio) pipeline with the
    /// default memory encryption key.
    pub fn new(algo: FingerprintAlgo) -> Self {
        Self::for_stack(&BmoStack::paper(), algo)
    }

    /// Creates an empty default-stack pipeline with an explicit key.
    pub fn with_key(algo: FingerprintAlgo, key: [u8; 16]) -> Self {
        Self::for_stack_with_key(&BmoStack::paper(), algo, key)
    }

    /// Creates an empty pipeline running exactly the given stack's
    /// transforms, with the default key.
    pub fn for_stack(stack: &BmoStack, algo: FingerprintAlgo) -> Self {
        Self::for_stack_with_key(stack, algo, DEFAULT_KEY)
    }

    /// Creates an empty pipeline for the given stack with an explicit key.
    pub fn for_stack_with_key(stack: &BmoStack, algo: FingerprintAlgo, key: [u8; 16]) -> Self {
        let caps = Caps::of(stack);
        BmoPipeline {
            stack: stack.clone(),
            caps,
            meta: MetadataStore::new(),
            tree: caps.merkle.then(|| MerkleTree::new(TREE_HEIGHT)),
            dedup: caps.dedup.then(|| DedupStore::new(algo)),
            enc: caps.encrypt.then(|| EncryptionEngine::new(key)),
            next_counter: 1,
            stored: LineStore::new(),
            aux: janus_sim::hash::FxHashMap::with_capacity_and_hasher(1024, Default::default()),
            wear: caps.wear.then(|| StartGap::new(SLOT_LINES, WEAR_INTERVAL)),
            oram: caps.oram.then(|| OramState {
                epoch: 0,
                map: LineStore::new(),
            }),
            spare: Vec::new(),
        }
    }

    /// The stack this pipeline runs.
    pub fn stack(&self) -> &BmoStack {
        &self.stack
    }

    /// The virtual frame a slot maps to through the ORAM position map
    /// (identity when ORAM is not stacked or the slot was never relocated).
    fn oram_vframe(&self, slot: u64) -> u64 {
        match &self.oram {
            Some(o) => {
                let loc = oram_map_loc(slot);
                let raw = o.map.read_u64(loc.line, loc.offset);
                if raw == 0 {
                    slot
                } else {
                    raw - 1
                }
            }
            None => slot,
        }
    }

    fn set_oram_vframe(&mut self, slot: u64, frame: u64) -> (LineAddr, Line) {
        let o = self.oram.as_mut().expect("oram stacked");
        let loc = oram_map_loc(slot);
        o.map.write_u64(loc.line, loc.offset, frame + 1);
        (loc.line, o.map.read(loc.line))
    }

    /// Physical frame address of a virtual frame (Start-Gap remap when
    /// wear-leveling is stacked, identity otherwise).
    fn phys_addr_of_vframe(&self, vframe: u64) -> LineAddr {
        match &self.wear {
            Some(w) => frame_data_addr(w.frame_of(vframe)),
            None => frame_data_addr(vframe),
        }
    }

    /// Physical NVM address currently holding a slot's payload.
    fn frame_addr_of_slot(&self, slot: u64) -> LineAddr {
        self.phys_addr_of_vframe(self.oram_vframe(slot))
    }

    /// O1: obliviously swap the written slot's frame with a pseudo-random
    /// partner frame, persisting the position map and epoch register.
    fn oram_relocate(&mut self, slot: u64, line_writes: &mut Vec<(LineAddr, Line)>) {
        let epoch = {
            let o = self.oram.as_mut().expect("oram stacked");
            o.epoch = o
                .epoch
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            o.epoch
        };
        let mut partner = epoch % SLOT_LINES;
        if partner == slot {
            partner = (partner + 1) % SLOT_LINES;
        }
        let vs = self.oram_vframe(slot);
        let vp = self.oram_vframe(partner);
        let pa_s = self.phys_addr_of_vframe(vs);
        let pa_p = self.phys_addr_of_vframe(vp);
        let a = self.stored.read(pa_s);
        let b = self.stored.read(pa_p);
        self.stored.write(pa_s, b);
        self.stored.write(pa_p, a);
        push_write(line_writes, pa_s, b);
        push_write(line_writes, pa_p, a);
        let (l1, v1) = self.set_oram_vframe(slot, vp);
        push_write(line_writes, l1, v1);
        let (l2, v2) = self.set_oram_vframe(partner, vs);
        push_write(line_writes, l2, v2);
        let mut reg = Line::zero();
        reg.write_u64(0, epoch);
        push_write(line_writes, ORAM_REG_ADDR, reg);
    }

    /// W1: record one write with the Start-Gap remapper, performing the gap
    /// copy when due and persisting the registers.
    fn wear_record(&mut self, vframe: u64, line_writes: &mut Vec<(LineAddr, Line)>) {
        let moved = self
            .wear
            .as_mut()
            .expect("wear stacked")
            .record_write(vframe);
        if let Some((from, to)) = moved {
            let fa_from = frame_data_addr(from);
            let fa_to = frame_data_addr(to);
            let v = self.stored.read(fa_from);
            self.stored.write(fa_to, v);
            push_write(line_writes, fa_to, v);
        }
        let regs = self.wear.as_ref().expect("wear stacked").save();
        let mut reg_line = Line::zero();
        for (i, r) in regs.iter().enumerate() {
            reg_line.write_u64(i * 8, *r);
        }
        push_write(line_writes, WEAR_REG_ADDR, reg_line);
    }

    /// Merkle-updates the leaf of a dirty metadata line (no-op without
    /// integrity).
    fn touch_leaf(&mut self, mline: LineAddr, mval: &Line) {
        if let Some(tree) = &mut self.tree {
            tree.update_leaf(leaf_index_of_meta_line(mline), mval);
        }
    }

    /// Applies a logical-line write through the stack's transforms and
    /// returns the NVM effects to persist.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is outside the data region.
    pub fn write(&mut self, logical: LineAddr, data: Line) -> WriteEffects {
        assert!(logical.0 < DATA_LINES, "write outside data region");
        let mut line_writes = std::mem::take(&mut self.spare);
        line_writes.clear();

        // Release the line's previous value (refcount drop; D3 prelude).
        // Without dedup a line owns its identity slot forever, so there is
        // nothing to release.
        let mut freed_slot = None;
        if self.caps.dedup {
            if let MetaEntry::Remap(old) = self.meta.logical(logical) {
                if self.dedup.as_mut().expect("dedup stacked").release(old) {
                    freed_slot = Some(old);
                    self.aux.remove(&old);
                    let fa = self.frame_addr_of_slot(old);
                    self.stored.write(fa, Line::zero());
                    push_write(&mut line_writes, fa, Line::zero());
                    push_write(&mut line_writes, mac_addr_of_slot(old), Line::zero());
                    let (mline, mval) = self.meta.set_slot(old, MetaEntry::Empty);
                    self.touch_leaf(mline, &mval);
                    push_write(&mut line_writes, mline, mval);
                }
            }
        }

        // D1 + D2: fingerprint and look up (identity slot without dedup).
        let (dup, slot) = match &mut self.dedup {
            Some(d) => {
                let outcome = d.lookup(&data);
                (outcome.is_duplicate(), outcome.slot())
            }
            None => (false, logical.0),
        };

        if !dup {
            // O1 then W1: relocation happens before the store so the
            // payload lands in its final frame.
            if self.caps.oram {
                self.oram_relocate(slot, &mut line_writes);
            }
            if self.caps.wear {
                let vframe = self.oram_vframe(slot);
                self.wear_record(vframe, &mut line_writes);
            }

            let counter = self.next_counter;
            self.next_counter += 1;

            // C1: compress the payload before any cipher stage.
            let (payload, comp_tag) = if self.caps.compress {
                let c = compress(&data);
                let mut l = Line::zero();
                l.write_bytes(0, &c.bytes);
                (l, c.scheme.tag())
            } else {
                (data, 0)
            };

            // E1–E4: encrypt + MAC; without encryption a keyless MAC still
            // binds the stored payload to its counter when integrity is
            // stacked.
            let (stored_line, mac) = match &mut self.enc {
                Some(enc) => {
                    let w = enc.encrypt_slot_with_counter(slot, counter, &payload);
                    (w.cipher, Some(w.mac))
                }
                None if self.caps.merkle => (payload, Some(line_mac(payload.as_bytes(), counter))),
                None => (payload, None),
            };

            let fa = self.frame_addr_of_slot(slot);
            self.stored.write(fa, stored_line);
            push_write(&mut line_writes, fa, stored_line);
            self.aux.insert(slot, SlotAux { mac, comp_tag });

            // Auxiliary line: MAC ‖ SECDED check bytes ‖ compression tag.
            if mac.is_some() || self.caps.ecc || self.caps.compress {
                let mut aux_line = Line::zero();
                if let Some(m) = &mac {
                    aux_line.write_bytes(0, m);
                }
                if self.caps.ecc {
                    for (i, c) in crate::ecc::encode_line(&stored_line).iter().enumerate() {
                        aux_line.write_bytes(AUX_ECC_OFFSET + i, &[c.0]);
                    }
                }
                if self.caps.compress {
                    aux_line.write_bytes(AUX_COMP_TAG_OFFSET, &[comp_tag]);
                }
                push_write(&mut line_writes, mac_addr_of_slot(slot), aux_line);
            }

            // Slot counter metadata + I1–I3.
            let (mline, mval) = self.meta.set_slot(slot, MetaEntry::Counter(counter));
            self.touch_leaf(mline, &mval);
            push_write(&mut line_writes, mline, mval);
        }

        // D3 + D4: record the logical mapping; I1–I3 over the meta line.
        let (mline, mval) = self.meta.set_logical(logical, MetaEntry::Remap(slot));
        self.touch_leaf(mline, &mval);
        push_write(&mut line_writes, mline, mval);

        WriteEffects {
            dup,
            slot,
            freed_slot,
            line_writes,
        }
    }

    /// Hands a consumed [`WriteEffects`]'s line-write buffer back to the
    /// pipeline so the next [`BmoPipeline::write`] reuses its allocation.
    pub fn recycle(&mut self, fx: WriteEffects) {
        if fx.line_writes.capacity() > self.spare.capacity() {
            self.spare = fx.line_writes;
        }
    }

    /// Decompresses a stored payload when compression is stacked.
    fn expand(&self, slot: u64, payload: Line) -> Line {
        if !self.caps.compress {
            return payload;
        }
        let tag = self.aux.get(&slot).map(|a| a.comp_tag).unwrap_or(0);
        let scheme = Scheme::from_tag(tag).expect("valid scheme tag");
        decompress(&Compressed {
            scheme,
            bytes: payload.as_bytes()[..scheme.size()].to_vec(),
        })
    }

    /// Reads a logical line without integrity checks (fast path used by the
    /// simulator's load handling; unwritten lines read zero).
    pub fn read(&self, logical: LineAddr) -> Line {
        match self.meta.logical(logical) {
            MetaEntry::Empty => Line::zero(),
            MetaEntry::Remap(slot) => match self.meta.slot(slot) {
                MetaEntry::Counter(c) => {
                    let stored = self.stored.read(self.frame_addr_of_slot(slot));
                    let payload = match &self.enc {
                        Some(enc) => enc.decrypt_slot(slot, c, &stored),
                        None => stored,
                    };
                    self.expand(slot, payload)
                }
                other => panic!("remap target {slot} has no counter: {other:?}"),
            },
            MetaEntry::Counter(_) => panic!("logical line {logical} holds a counter entry"),
        }
    }

    /// Reads a logical line with every stacked verification: Merkle check
    /// of both metadata leaves (integrity), MAC check of the stored payload
    /// (encryption or integrity), then decrypt + decompress.
    ///
    /// # Errors
    ///
    /// Returns an [`IntegrityError`] describing the first check that failed.
    pub fn read_verified(&self, logical: LineAddr) -> Result<Line, IntegrityError> {
        let lloc = meta_loc_of_logical(logical);
        if let Some(tree) = &self.tree {
            if !tree.verify_leaf(
                leaf_index_of_meta_line(lloc.line),
                &self.meta.line(lloc.line),
            ) {
                return Err(IntegrityError::TamperedMetadata { line: lloc.line });
            }
        }
        match self.meta.logical(logical) {
            MetaEntry::Empty => Ok(Line::zero()),
            MetaEntry::Counter(_) => Err(IntegrityError::MetadataCorrupt {
                what: format!("logical line {logical} holds a counter entry"),
            }),
            MetaEntry::Remap(slot) => {
                let sloc = meta_loc_of_slot(slot);
                if let Some(tree) = &self.tree {
                    if !tree.verify_leaf(
                        leaf_index_of_meta_line(sloc.line),
                        &self.meta.line(sloc.line),
                    ) {
                        return Err(IntegrityError::TamperedMetadata { line: sloc.line });
                    }
                }
                let counter = match self.meta.slot(slot) {
                    MetaEntry::Counter(c) => c,
                    other => {
                        return Err(IntegrityError::MetadataCorrupt {
                            what: format!("remap target {slot} holds {other:?}"),
                        })
                    }
                };
                let stored = self.stored.read(self.frame_addr_of_slot(slot));
                if self.caps.encrypt || self.caps.merkle {
                    let mac = self.aux.get(&slot).and_then(|a| a.mac).unwrap_or([0; 20]);
                    let ok = match &self.enc {
                        Some(enc) => enc.stored_mac_matches(slot, counter, &stored, &mac),
                        None => line_mac(stored.as_bytes(), counter) == mac,
                    };
                    if !ok {
                        return Err(IntegrityError::MacMismatch { slot });
                    }
                }
                let payload = match &self.enc {
                    Some(enc) => enc.decrypt_slot(slot, counter, &stored),
                    None => stored,
                };
                Ok(self.expand(slot, payload))
            }
        }
    }

    /// The current Merkle root (what the secure register should hold;
    /// all-zero when integrity is not stacked).
    pub fn root(&self) -> NodeHash {
        match &self.tree {
            Some(tree) => tree.root(),
            None => [0u8; 20],
        }
    }

    /// The dedup store's statistics (hits, misses, collisions); zeros when
    /// deduplication is not stacked.
    pub fn dedup_stats(&self) -> (u64, u64, u64) {
        match &self.dedup {
            Some(d) => d.stats(),
            None => (0, 0, 0),
        }
    }

    /// Non-mutating prediction of the dedup outcome for `data`: `Some(slot)`
    /// when a write of this value would be detected as a duplicate of
    /// `slot`. Used by pre-execution (which must not change memory state).
    pub fn predict_dup(&self, data: &Line) -> Option<u64> {
        self.dedup.as_ref().and_then(|d| d.peek(data))
    }

    /// The slot a logical line currently maps to, if any.
    pub fn slot_of(&self, logical: LineAddr) -> Option<u64> {
        match self.meta.logical(logical) {
            MetaEntry::Remap(slot) => Some(slot),
            _ => None,
        }
    }

    /// The physical NVM address currently holding a logical line's payload
    /// (through the ORAM/wear frame indirection), if the line was written.
    pub fn data_addr_of(&self, logical: LineAddr) -> Option<LineAddr> {
        self.slot_of(logical).map(|s| self.frame_addr_of_slot(s))
    }

    /// Rebuilds a default-stack (paper trio) pipeline from the persistent
    /// domain after a crash. See [`BmoPipeline::recover_stack`].
    ///
    /// # Errors
    ///
    /// Returns [`IntegrityError::RootMismatch`] when the persisted metadata
    /// does not match the secure register (torn metadata / tampering), or
    /// the first MAC / structural error found.
    pub fn recover(
        persist: &LineStore,
        algo: FingerprintAlgo,
        key: [u8; 16],
        secure_root: NodeHash,
    ) -> Result<Self, IntegrityError> {
        Self::recover_stack(&BmoStack::paper(), persist, algo, key, secure_root)
    }

    /// Rebuilds a pipeline for the given stack from the persistent domain.
    ///
    /// Parses the metadata region; when integrity is stacked, recomputes
    /// the Merkle root and compares it against `secure_root`; restores the
    /// Start-Gap registers and ORAM position map when stacked; then per
    /// slot: SECDED-corrects the stored payload (ECC), verifies its MAC
    /// (encryption/integrity), decrypts (encryption), decompresses
    /// (compression), and rebuilds the dedup fingerprint table and
    /// refcounts (dedup).
    ///
    /// # Errors
    ///
    /// Returns [`IntegrityError::RootMismatch`] on a secure-register
    /// mismatch, or the first MAC / structural error found.
    pub fn recover_stack(
        stack: &BmoStack,
        persist: &LineStore,
        algo: FingerprintAlgo,
        key: [u8; 16],
        secure_root: NodeHash,
    ) -> Result<Self, IntegrityError> {
        let caps = Caps::of(stack);

        // Collect metadata-region lines.
        let meta_lines: LineStore = persist
            .iter()
            .filter(|(a, _)| (META_BASE..META_BASE + META_LINES).contains(&a.0))
            .map(|(a, l)| (a, *l))
            .collect();
        let meta = MetadataStore::from_lines(meta_lines);

        // Recompute the tree and check the root (integrity only).
        let tree = if caps.merkle {
            let tree = MerkleTree::from_leaves(
                TREE_HEIGHT,
                meta.lines()
                    .iter()
                    .map(|(a, l)| (leaf_index_of_meta_line(a), *l)),
            );
            if tree.root() != secure_root {
                return Err(IntegrityError::RootMismatch);
            }
            Some(tree)
        } else {
            None
        };

        // Start-Gap registers (all-zero register line = never moved).
        let wear = if caps.wear {
            let reg = persist.read(WEAR_REG_ADDR);
            if reg.is_zero() {
                Some(StartGap::new(SLOT_LINES, WEAR_INTERVAL))
            } else {
                let mut regs = [0u64; 6];
                for (i, r) in regs.iter_mut().enumerate() {
                    *r = reg.read_u64(i * 8);
                }
                Some(StartGap::restore(regs))
            }
        } else {
            None
        };

        // ORAM epoch + position map.
        let oram = if caps.oram {
            let epoch = persist.read(ORAM_REG_ADDR).read_u64(0);
            let map_lines = SLOT_LINES / ENTRIES_PER_LINE;
            let map: LineStore = persist
                .iter()
                .filter(|(a, _)| (ORAM_MAP_BASE..ORAM_MAP_BASE + map_lines).contains(&a.0))
                .map(|(a, l)| (a, *l))
                .collect();
            Some(OramState { epoch, map })
        } else {
            None
        };

        // Refcounts: how many logical lines point at each slot.
        let mut refcounts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (_, entry) in meta.iter_logical() {
            match entry {
                MetaEntry::Remap(slot) => *refcounts.entry(slot).or_insert(0) += 1,
                other => {
                    return Err(IntegrityError::MetadataCorrupt {
                        what: format!("logical entry is {other:?}"),
                    })
                }
            }
        }

        let mut p = BmoPipeline {
            stack: stack.clone(),
            caps,
            meta,
            tree,
            dedup: caps.dedup.then(|| DedupStore::new(algo)),
            enc: caps.encrypt.then(|| EncryptionEngine::new(key)),
            next_counter: 1,
            stored: LineStore::new(),
            aux: janus_sim::hash::FxHashMap::with_capacity_and_hasher(1024, Default::default()),
            wear,
            oram,
            spare: Vec::new(),
        };

        // Rebuild slots: ECC-correct, MAC-check, decrypt, decompress,
        // re-fingerprint.
        let mut max_counter = 0u64;
        let slots: Vec<(u64, MetaEntry)> = p.meta.iter_slots().collect();
        for (slot, entry) in slots {
            let counter = match entry {
                MetaEntry::Counter(c) => c,
                other => {
                    return Err(IntegrityError::MetadataCorrupt {
                        what: format!("slot {slot} entry is {other:?}"),
                    })
                }
            };
            max_counter = max_counter.max(counter);
            let fa = p.frame_addr_of_slot(slot);
            let raw = persist.read(fa);
            let aux_line = persist.read(mac_addr_of_slot(slot));
            // Run the payload through SECDED first: single-bit NVM faults
            // are corrected transparently; multi-bit damage falls through
            // to the MAC check (ECC never *hides* tampering — the MAC is
            // still verified on whatever ECC reconstructs).
            let stored_line = if caps.ecc {
                let mut checks = [crate::ecc::Check(0); 8];
                for (k, c) in checks.iter_mut().enumerate() {
                    *c = crate::ecc::Check(aux_line.as_bytes()[AUX_ECC_OFFSET + k]);
                }
                match crate::ecc::decode_line(&raw, &checks) {
                    Some((fixed, _corrected)) => fixed,
                    None => raw, // uncorrectable: let the MAC reject it
                }
            } else {
                raw
            };
            let mac = if caps.encrypt || caps.merkle {
                let mac: [u8; 20] = aux_line.as_bytes()[0..20].try_into().expect("20 bytes");
                if line_mac(stored_line.as_bytes(), counter) != mac {
                    return Err(IntegrityError::MacMismatch { slot });
                }
                Some(mac)
            } else {
                None
            };
            let payload = match &p.enc {
                Some(enc) => enc.decrypt_slot(slot, counter, &stored_line),
                None => stored_line,
            };
            let comp_tag = aux_line.as_bytes()[AUX_COMP_TAG_OFFSET];
            let plain = if caps.compress {
                let scheme =
                    Scheme::from_tag(comp_tag).ok_or_else(|| IntegrityError::MetadataCorrupt {
                        what: format!("slot {slot} has invalid compression tag {comp_tag}"),
                    })?;
                decompress(&Compressed {
                    scheme,
                    bytes: payload.as_bytes()[..scheme.size()].to_vec(),
                })
            } else {
                payload
            };
            let refs = refcounts.get(&slot).copied().unwrap_or(0);
            if refs == 0 {
                // Leaked slot (possible only without metadata atomicity);
                // drop it rather than resurrect garbage.
                continue;
            }
            if let Some(d) = &mut p.dedup {
                d.recover_slot(slot, plain, refs);
            }
            p.stored.write(fa, stored_line);
            p.aux.insert(slot, SlotAux { mac, comp_tag });
        }

        // Every referenced slot must exist.
        for &slot in refcounts.keys() {
            if !matches!(p.meta.slot(slot), MetaEntry::Counter(_)) {
                return Err(IntegrityError::MetadataCorrupt {
                    what: format!("logical lines reference missing slot {slot}"),
                });
            }
        }
        p.next_counter = max_counter + 1;

        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::slot_data_addr;
    use crate::stack::BmoId;

    fn pipeline() -> BmoPipeline {
        BmoPipeline::new(FingerprintAlgo::Md5)
    }

    fn stack_of(ids: &[BmoId]) -> BmoStack {
        BmoStack::new(ids.iter().copied()).expect("valid stack")
    }

    /// Applies effects to a persistent store plus root register, as the MC
    /// does at write-queue acceptance.
    fn persist(p: &BmoPipeline, fx: &WriteEffects, store: &mut LineStore, root: &mut NodeHash) {
        for (a, l) in &fx.line_writes {
            store.write(*a, *l);
        }
        *root = p.root();
    }

    /// Writes a workload through a stack's pipeline, crashes (keeps only
    /// the persisted lines + root), recovers, and verifies every line.
    fn crash_recover_verify(stack: &BmoStack, lines: u64) {
        let mut p = BmoPipeline::for_stack(stack, FingerprintAlgo::Md5);
        let mut store = LineStore::new();
        let mut root = p.root();
        let value = |i: u64| Line::from_words(&[i % 5, i * 3, 0xABCD]);
        for i in 0..lines * 3 {
            let fx = p.write(LineAddr(i % lines), value(i));
            persist(&p, &fx, &mut store, &mut root);
        }
        let r = BmoPipeline::recover_stack(stack, &store, FingerprintAlgo::Md5, DEFAULT_KEY, root)
            .unwrap_or_else(|e| panic!("recovery under stack [{stack}]: {e}"));
        for i in 0..lines {
            let expect = p.read(LineAddr(i));
            assert_eq!(r.read(LineAddr(i)), expect, "stack [{stack}] line {i}");
            assert_eq!(
                r.read_verified(LineAddr(i)).expect("verified"),
                expect,
                "stack [{stack}] verified line {i}"
            );
        }
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut p = pipeline();
        let data = Line::from_words(&[11, 22, 33]);
        p.write(LineAddr(5), data);
        assert_eq!(p.read(LineAddr(5)), data);
        assert_eq!(p.read_verified(LineAddr(5)).unwrap(), data);
    }

    #[test]
    fn unwritten_lines_read_zero() {
        let p = pipeline();
        assert_eq!(p.read(LineAddr(9)), Line::zero());
        assert_eq!(p.read_verified(LineAddr(9)).unwrap(), Line::zero());
    }

    #[test]
    fn duplicate_write_shares_slot_and_skips_data_write() {
        let mut p = pipeline();
        let fx1 = p.write(LineAddr(1), Line::splat(7));
        let fx2 = p.write(LineAddr(2), Line::splat(7));
        assert!(!fx1.dup);
        assert!(fx2.dup);
        assert_eq!(fx1.slot, fx2.slot);
        // Duplicate write touches only its logical metadata line.
        assert_eq!(fx2.line_writes.len(), 1);
        assert!(fx1.line_writes.len() >= 3); // payload + aux + 2 meta lines (may share)
        assert_eq!(p.read(LineAddr(1)), p.read(LineAddr(2)));
    }

    #[test]
    fn overwrite_releases_previous_value() {
        let mut p = pipeline();
        let fx1 = p.write(LineAddr(1), Line::splat(1));
        let fx2 = p.write(LineAddr(1), Line::splat(2));
        assert_eq!(fx2.freed_slot, Some(fx1.slot));
        assert_eq!(p.read(LineAddr(1)), Line::splat(2));
    }

    #[test]
    fn overwrite_of_shared_value_keeps_it_for_other_referrers() {
        let mut p = pipeline();
        p.write(LineAddr(1), Line::splat(1));
        p.write(LineAddr(2), Line::splat(1)); // shares slot
        let fx = p.write(LineAddr(1), Line::splat(2));
        assert_eq!(fx.freed_slot, None, "slot still referenced by line 2");
        assert_eq!(p.read(LineAddr(2)), Line::splat(1));
        assert_eq!(p.read(LineAddr(1)), Line::splat(2));
    }

    #[test]
    fn effects_fully_describe_persistence() {
        // Replaying only `line_writes` into an empty store must allow full
        // recovery with identical reads.
        let mut p = pipeline();
        let mut store = LineStore::new();
        let mut root = p.root();
        for i in 0..20u64 {
            let fx = p.write(LineAddr(i % 7), Line::from_words(&[i % 3, i]));
            persist(&p, &fx, &mut store, &mut root);
        }
        let r = BmoPipeline::recover(&store, FingerprintAlgo::Md5, DEFAULT_KEY, root)
            .expect("recovery succeeds");
        for i in 0..7u64 {
            assert_eq!(
                r.read_verified(LineAddr(i)).unwrap(),
                p.read(LineAddr(i)),
                "line {i}"
            );
        }
    }

    #[test]
    fn recovery_detects_root_mismatch() {
        let mut p = pipeline();
        let mut store = LineStore::new();
        let mut root = p.root();
        let fx = p.write(LineAddr(1), Line::splat(3));
        persist(&p, &fx, &mut store, &mut root);
        // Torn metadata: drop one persisted meta line.
        let meta_line = fx
            .line_writes
            .iter()
            .find(|(a, _)| (META_BASE..META_BASE + META_LINES).contains(&a.0))
            .expect("write touched metadata")
            .0;
        store.write(meta_line, Line::zero());
        let err = BmoPipeline::recover(&store, FingerprintAlgo::Md5, DEFAULT_KEY, root)
            .expect_err("must detect");
        assert_eq!(err, IntegrityError::RootMismatch);
    }

    #[test]
    fn recovery_corrects_single_bit_nvm_faults() {
        // A single stuck/flipped cell in the ciphertext is a *device*
        // fault, not tampering: with ECC stacked, SECDED corrects it and
        // recovery succeeds.
        let stack = stack_of(&[
            BmoId::Encryption,
            BmoId::Integrity,
            BmoId::Dedup,
            BmoId::Ecc,
        ]);
        let mut p = BmoPipeline::for_stack(&stack, FingerprintAlgo::Md5);
        let mut store = LineStore::new();
        let mut root = p.root();
        let fx = p.write(LineAddr(1), Line::splat(3));
        persist(&p, &fx, &mut store, &mut root);
        let slot_addr = slot_data_addr(fx.slot);
        let mut ct = store.read(slot_addr);
        ct.0[5] ^= 1;
        store.write(slot_addr, ct);
        let r = BmoPipeline::recover_stack(&stack, &store, FingerprintAlgo::Md5, DEFAULT_KEY, root)
            .expect("ECC corrects a single-bit fault");
        assert_eq!(r.read_verified(LineAddr(1)).unwrap(), Line::splat(3));
    }

    #[test]
    fn recovery_detects_multibit_tampering() {
        // Beyond SECDED's reach (bits in several words), the MAC rejects.
        let stack = stack_of(&[
            BmoId::Encryption,
            BmoId::Integrity,
            BmoId::Dedup,
            BmoId::Ecc,
        ]);
        let mut p = BmoPipeline::for_stack(&stack, FingerprintAlgo::Md5);
        let mut store = LineStore::new();
        let mut root = p.root();
        let fx = p.write(LineAddr(1), Line::splat(3));
        persist(&p, &fx, &mut store, &mut root);
        let slot_addr = slot_data_addr(fx.slot);
        let mut ct = store.read(slot_addr);
        ct.0[5] ^= 0xFF;
        ct.0[13] ^= 0xFF;
        ct.0[47] ^= 0xFF;
        store.write(slot_addr, ct);
        let err =
            BmoPipeline::recover_stack(&stack, &store, FingerprintAlgo::Md5, DEFAULT_KEY, root)
                .expect_err("must detect");
        assert_eq!(err, IntegrityError::MacMismatch { slot: fx.slot });
    }

    #[test]
    fn without_ecc_single_bit_fault_is_rejected_not_corrected() {
        // The default stack has no ECC: the same single-bit fault that the
        // ECC stack corrects must be *detected* by the MAC instead.
        let mut p = pipeline();
        let mut store = LineStore::new();
        let mut root = p.root();
        let fx = p.write(LineAddr(1), Line::splat(3));
        persist(&p, &fx, &mut store, &mut root);
        let slot_addr = slot_data_addr(fx.slot);
        let mut ct = store.read(slot_addr);
        ct.0[5] ^= 1;
        store.write(slot_addr, ct);
        let err = BmoPipeline::recover(&store, FingerprintAlgo::Md5, DEFAULT_KEY, root)
            .expect_err("no ECC stacked");
        assert_eq!(err, IntegrityError::MacMismatch { slot: fx.slot });
    }

    #[test]
    fn verified_read_detects_in_memory_tamper() {
        let mut p = pipeline();
        let fx = p.write(LineAddr(1), Line::splat(3));
        // Tamper with the volatile payload mirror.
        let addr = slot_data_addr(fx.slot);
        let mut ct = p.stored.read(addr);
        ct.0[0] ^= 0xFF;
        p.stored.write(addr, ct);
        assert!(matches!(
            p.read_verified(LineAddr(1)),
            Err(IntegrityError::MacMismatch { .. })
        ));
    }

    #[test]
    fn dedup_ratio_visible_in_stats() {
        let mut p = pipeline();
        for i in 0..10 {
            p.write(LineAddr(i), Line::splat(42)); // 1 fresh + 9 dups
        }
        let (hits, misses, _) = p.dedup_stats();
        assert_eq!((hits, misses), (9, 1));
    }

    #[test]
    fn crc32_pipeline_round_trips() {
        let mut p = BmoPipeline::new(FingerprintAlgo::Crc32);
        for i in 0..50u64 {
            p.write(LineAddr(i), Line::from_words(&[i * 31, i]));
        }
        for i in 0..50u64 {
            assert_eq!(
                p.read_verified(LineAddr(i)).unwrap(),
                Line::from_words(&[i * 31, i])
            );
        }
    }

    #[test]
    fn root_changes_on_every_fresh_write() {
        let mut p = pipeline();
        let r0 = p.root();
        p.write(LineAddr(1), Line::splat(1));
        let r1 = p.root();
        assert_ne!(r1, r0);
        p.write(LineAddr(2), Line::splat(2));
        assert_ne!(p.root(), r1);
    }

    #[test]
    fn recovery_of_empty_system() {
        let store = LineStore::new();
        let p = pipeline();
        let r = BmoPipeline::recover(&store, FingerprintAlgo::Md5, DEFAULT_KEY, p.root())
            .expect("empty recovery");
        assert_eq!(r.read(LineAddr(0)), Line::zero());
    }

    #[test]
    fn single_bmo_stacks_round_trip_through_recovery() {
        for ids in [
            &[BmoId::Encryption][..],
            &[BmoId::Integrity][..],
            &[BmoId::Dedup][..],
            &[BmoId::Compression][..],
        ] {
            crash_recover_verify(&stack_of(ids), 9);
        }
    }

    #[test]
    fn empty_stack_is_raw_nvm() {
        crash_recover_verify(&BmoStack::new([]).unwrap(), 6);
    }

    #[test]
    fn wear_and_oram_stacks_round_trip_through_recovery() {
        // Enough writes to force several Start-Gap moves (interval 64) and
        // many ORAM swaps, across frame indirection layers.
        for ids in [
            &[BmoId::WearLeveling][..],
            &[BmoId::Oram][..],
            &[BmoId::Oram, BmoId::WearLeveling][..],
            &[
                BmoId::Encryption,
                BmoId::Integrity,
                BmoId::Oram,
                BmoId::WearLeveling,
            ][..],
        ] {
            crash_recover_verify(&stack_of(ids), 40);
        }
    }

    #[test]
    fn all_seven_stack_round_trips_through_recovery() {
        crash_recover_verify(&BmoStack::all(), 40);
    }

    #[test]
    fn extended_stack_round_trips_through_recovery() {
        crash_recover_verify(&BmoStack::extended(), 12);
    }

    #[test]
    fn integrity_without_encryption_detects_payload_tamper() {
        // The keyless MAC binds the plaintext payload to its counter.
        let stack = stack_of(&[BmoId::Integrity]);
        let mut p = BmoPipeline::for_stack(&stack, FingerprintAlgo::Md5);
        let mut store = LineStore::new();
        let mut root = p.root();
        let fx = p.write(LineAddr(1), Line::splat(9));
        persist(&p, &fx, &mut store, &mut root);
        let mut v = store.read(slot_data_addr(fx.slot));
        v.0[0] ^= 0xFF;
        store.write(slot_data_addr(fx.slot), v);
        let err =
            BmoPipeline::recover_stack(&stack, &store, FingerprintAlgo::Md5, DEFAULT_KEY, root)
                .expect_err("tamper must be caught");
        assert_eq!(err, IntegrityError::MacMismatch { slot: fx.slot });
    }

    #[test]
    fn compression_stores_compressed_payload() {
        let stack = stack_of(&[BmoId::Compression]);
        let mut p = BmoPipeline::for_stack(&stack, FingerprintAlgo::Md5);
        let data = Line::splat(7); // Repeat8: compresses to 9 bytes
        let fx = p.write(LineAddr(1), data);
        let stored = p.stored.read(slot_data_addr(fx.slot));
        assert_ne!(stored, data, "payload is stored compressed");
        assert_eq!(p.read(LineAddr(1)), data, "round-trips through decompress");
    }

    #[test]
    fn wear_leveling_migrates_hot_frames() {
        // The Start-Gap gap starts at the spare frame and walks downward,
        // so the first line it displaces is the top slot.
        let stack = stack_of(&[BmoId::WearLeveling]);
        let mut p = BmoPipeline::for_stack(&stack, FingerprintAlgo::Md5);
        let top = LineAddr(SLOT_LINES - 1);
        let marker = Line::from_words(&[0xFEED]);
        p.write(top, marker);
        let first = p.data_addr_of(top).expect("written");
        // Hot line 0: enough writes to trigger a gap move past the top slot.
        for i in 0..WEAR_INTERVAL * 2 {
            p.write(LineAddr(0), Line::from_words(&[i]));
        }
        let after = p.data_addr_of(top).expect("still mapped");
        assert_ne!(first, after, "gap move must relocate the top frame");
        assert_eq!(p.read(top), marker, "content follows the gap copy");
        assert_eq!(
            p.read(LineAddr(0)),
            Line::from_words(&[WEAR_INTERVAL * 2 - 1])
        );
    }

    #[test]
    fn oram_relocates_frames_on_fresh_writes() {
        let stack = stack_of(&[BmoId::Oram]);
        let mut p = BmoPipeline::for_stack(&stack, FingerprintAlgo::Md5);
        p.write(LineAddr(3), Line::splat(1));
        let a0 = p.data_addr_of(LineAddr(3)).unwrap();
        // Every fresh write relocates; after several the frame has moved.
        let mut moved = false;
        for i in 0..8u64 {
            p.write(LineAddr(3), Line::from_words(&[i + 2]));
            if p.data_addr_of(LineAddr(3)).unwrap() != a0 {
                moved = true;
            }
        }
        assert!(moved, "ORAM never relocated the frame");
        assert_eq!(p.read(LineAddr(3)), Line::from_words(&[9]));
    }
}
