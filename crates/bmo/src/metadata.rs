//! Co-located BMO metadata (the DeWrite scheme) and the physical address
//! map.
//!
//! "The encryption and deduplication mechanisms follow a recent work
//! \[DeWrite\], where the encryption counter and the deduplication address
//! mapping table share the same metadata entry to minimize the storage
//! overhead, i.e., if data is duplicated, the metadata entry stores the
//! address mapping, otherwise, it stores the counter." (§5.1)
//!
//! Our functional realization is content-addressed: every distinct line
//! value lives in one *slot* of a dedup heap, and each logical line's
//! metadata entry remaps it to its slot; each slot's metadata entry holds its
//! encryption counter. (The paper stores unique data at its home address —
//! the slot indirection is behaviour-preserving for every experiment: a
//! duplicate write is still a metadata-only update, a fresh write is still
//! one data write plus metadata, and the same co-located entry feeds the
//! Merkle tree. DESIGN.md records the substitution.)
//!
//! Metadata entries are 8 bytes, packed 8 per 64-byte line in a dedicated
//! metadata region, so they can be persisted through the ordinary write path
//! and re-parsed during crash recovery.

use janus_nvm::addr::LineAddr;
use janus_nvm::line::Line;
use janus_nvm::store::LineStore;

/// Number of logical data lines (4 GB at 64 B/line).
pub const DATA_LINES: u64 = 1 << 26;
/// First line of the dedup-heap slot region.
pub const SLOT_BASE: u64 = DATA_LINES;
/// Number of dedup-heap slots.
pub const SLOT_LINES: u64 = 1 << 26;
/// First line of the metadata region.
pub const META_BASE: u64 = SLOT_BASE + SLOT_LINES;
/// Metadata entries per 64-byte line.
pub const ENTRIES_PER_LINE: u64 = 8;
/// Number of metadata lines (logical entries then slot entries).
pub const META_LINES: u64 = (DATA_LINES + SLOT_LINES) / ENTRIES_PER_LINE;
/// First line of the MAC region (one line per slot).
pub const MAC_BASE: u64 = META_BASE + META_LINES;
/// First line of the auxiliary BMO region (wear/ORAM persistent state).
pub const AUX_BASE: u64 = MAC_BASE + SLOT_LINES;
/// The Start-Gap spare frame: physical frame index [`SLOT_LINES`] lives
/// here (the slot region holds frames `0..SLOT_LINES`).
pub const WEAR_SPARE_ADDR: LineAddr = LineAddr(AUX_BASE);
/// The persisted Start-Gap registers (start/gap/interval/…, see
/// [`crate::wear::StartGap::save`]).
pub const WEAR_REG_ADDR: LineAddr = LineAddr(AUX_BASE + 1);
/// The persisted ORAM relocation epoch register.
pub const ORAM_REG_ADDR: LineAddr = LineAddr(AUX_BASE + 2);
/// First line of the persisted ORAM position map (8 entries per line; an
/// entry stores `frame + 1`, zero meaning "identity, never relocated").
pub const ORAM_MAP_BASE: u64 = AUX_BASE + 3;

/// NVM line address of a slot-region physical frame. Frames `0..SLOT_LINES`
/// are the slot region itself; frame [`SLOT_LINES`] is the Start-Gap spare.
pub fn frame_data_addr(frame: u64) -> LineAddr {
    if frame < SLOT_LINES {
        LineAddr(SLOT_BASE + frame)
    } else {
        assert_eq!(frame, SLOT_LINES, "frame out of range: {frame}");
        WEAR_SPARE_ADDR
    }
}

/// Position-map location (line + byte offset) of a slot's ORAM entry.
pub fn oram_map_loc(slot: u64) -> MetaLoc {
    assert!(slot < SLOT_LINES, "slot out of range: {slot}");
    MetaLoc {
        line: LineAddr(ORAM_MAP_BASE + slot / ENTRIES_PER_LINE),
        offset: (slot % ENTRIES_PER_LINE) as usize * 8,
    }
}

/// One 8-byte co-located metadata entry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MetaEntry {
    /// Never written.
    #[default]
    Empty,
    /// Logical line remaps to a dedup-heap slot.
    Remap(u64),
    /// Slot's encryption counter.
    Counter(u64),
}

const TAG_SHIFT: u32 = 62;
const TAG_EMPTY: u64 = 0;
const TAG_REMAP: u64 = 1;
const TAG_COUNTER: u64 = 2;
const PAYLOAD_MASK: u64 = (1 << TAG_SHIFT) - 1;

impl MetaEntry {
    /// Packs the entry into its 8-byte wire format (tag in the top 2 bits).
    pub fn encode(self) -> u64 {
        match self {
            MetaEntry::Empty => 0,
            MetaEntry::Remap(slot) => {
                assert!(slot <= PAYLOAD_MASK, "slot index overflow");
                (TAG_REMAP << TAG_SHIFT) | slot
            }
            MetaEntry::Counter(c) => {
                assert!(c <= PAYLOAD_MASK, "counter overflow");
                (TAG_COUNTER << TAG_SHIFT) | c
            }
        }
    }

    /// Parses the 8-byte wire format.
    pub fn decode(raw: u64) -> MetaEntry {
        match raw >> TAG_SHIFT {
            TAG_EMPTY => MetaEntry::Empty,
            TAG_REMAP => MetaEntry::Remap(raw & PAYLOAD_MASK),
            TAG_COUNTER => MetaEntry::Counter(raw & PAYLOAD_MASK),
            _ => MetaEntry::Empty, // tag 3 unused; treat as empty
        }
    }
}

/// Location of a metadata entry: the line that holds it and the byte offset
/// within that line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetaLoc {
    /// Metadata-region line address.
    pub line: LineAddr,
    /// Byte offset of the 8-byte entry within the line.
    pub offset: usize,
}

/// Metadata location for a logical data line.
///
/// # Panics
///
/// Panics if `logical` is outside the data region.
pub fn meta_loc_of_logical(logical: LineAddr) -> MetaLoc {
    assert!(
        logical.0 < DATA_LINES,
        "logical line out of range: {logical}"
    );
    MetaLoc {
        line: LineAddr(META_BASE + logical.0 / ENTRIES_PER_LINE),
        offset: (logical.0 % ENTRIES_PER_LINE) as usize * 8,
    }
}

/// Metadata location for a dedup-heap slot's counter.
///
/// # Panics
///
/// Panics if `slot` is outside the slot region.
pub fn meta_loc_of_slot(slot: u64) -> MetaLoc {
    assert!(slot < SLOT_LINES, "slot out of range: {slot}");
    let index = DATA_LINES + slot;
    MetaLoc {
        line: LineAddr(META_BASE + index / ENTRIES_PER_LINE),
        offset: (index % ENTRIES_PER_LINE) as usize * 8,
    }
}

/// NVM line address of a dedup-heap slot's data.
pub fn slot_data_addr(slot: u64) -> LineAddr {
    LineAddr(SLOT_BASE + slot)
}

/// NVM line address holding a slot's MAC.
pub fn mac_addr_of_slot(slot: u64) -> LineAddr {
    LineAddr(MAC_BASE + slot)
}

/// Leaf index (within the Merkle tree) of a metadata line.
///
/// # Panics
///
/// Panics if `line` is not in the metadata region.
pub fn leaf_index_of_meta_line(line: LineAddr) -> u64 {
    assert!(
        (META_BASE..META_BASE + META_LINES).contains(&line.0),
        "not a metadata line: {line}"
    );
    line.0 - META_BASE
}

/// The functional metadata store: a line-packed view over a [`LineStore`],
/// readable/writable at entry granularity.
#[derive(Clone, Debug, Default)]
pub struct MetadataStore {
    lines: LineStore,
}

impl MetadataStore {
    /// An empty store (all entries [`MetaEntry::Empty`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a store from raw metadata-region lines (crash recovery).
    pub fn from_lines(lines: LineStore) -> Self {
        MetadataStore { lines }
    }

    fn get(&self, loc: MetaLoc) -> MetaEntry {
        MetaEntry::decode(self.lines.read_u64(loc.line, loc.offset))
    }

    /// Sets an entry and returns the updated metadata line value (what must
    /// be written back to NVM).
    fn set(&mut self, loc: MetaLoc, entry: MetaEntry) -> (LineAddr, Line) {
        self.lines.write_u64(loc.line, loc.offset, entry.encode());
        (loc.line, self.lines.read(loc.line))
    }

    /// The entry for a logical line.
    pub fn logical(&self, logical: LineAddr) -> MetaEntry {
        self.get(meta_loc_of_logical(logical))
    }

    /// Sets the remap entry for a logical line; returns the dirty meta line.
    pub fn set_logical(&mut self, logical: LineAddr, entry: MetaEntry) -> (LineAddr, Line) {
        self.set(meta_loc_of_logical(logical), entry)
    }

    /// The counter entry for a slot.
    pub fn slot(&self, slot: u64) -> MetaEntry {
        self.get(meta_loc_of_slot(slot))
    }

    /// Sets the counter entry for a slot; returns the dirty meta line.
    pub fn set_slot(&mut self, slot: u64, entry: MetaEntry) -> (LineAddr, Line) {
        self.set(meta_loc_of_slot(slot), entry)
    }

    /// Raw metadata line (Merkle leaf content).
    pub fn line(&self, addr: LineAddr) -> Line {
        self.lines.read(addr)
    }

    /// The underlying line store (for recovery snapshots).
    pub fn lines(&self) -> &LineStore {
        &self.lines
    }

    /// Iterates over all logical lines with non-empty entries.
    pub fn iter_logical(&self) -> impl Iterator<Item = (LineAddr, MetaEntry)> + '_ {
        self.lines.iter().flat_map(|(line, l)| {
            (0..ENTRIES_PER_LINE as usize).filter_map(move |i| {
                let index = (line.0 - META_BASE) * ENTRIES_PER_LINE + i as u64;
                if index >= DATA_LINES {
                    return None;
                }
                let e = MetaEntry::decode(l.read_u64(i * 8));
                (e != MetaEntry::Empty).then_some((LineAddr(index), e))
            })
        })
    }

    /// Iterates over all slots with non-empty entries.
    pub fn iter_slots(&self) -> impl Iterator<Item = (u64, MetaEntry)> + '_ {
        self.lines.iter().flat_map(|(line, l)| {
            (0..ENTRIES_PER_LINE as usize).filter_map(move |i| {
                let index = (line.0 - META_BASE) * ENTRIES_PER_LINE + i as u64;
                if index < DATA_LINES {
                    return None;
                }
                let e = MetaEntry::decode(l.read_u64(i * 8));
                (e != MetaEntry::Empty).then_some((index - DATA_LINES, e))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for e in [
            MetaEntry::Empty,
            MetaEntry::Remap(0),
            MetaEntry::Remap(12345),
            MetaEntry::Counter(0),
            MetaEntry::Counter(u64::MAX >> 2),
        ] {
            assert_eq!(MetaEntry::decode(e.encode()), e, "{e:?}");
        }
    }

    #[test]
    fn remap_and_counter_do_not_collide() {
        assert_ne!(MetaEntry::Remap(5).encode(), MetaEntry::Counter(5).encode());
    }

    #[test]
    #[should_panic(expected = "counter overflow")]
    fn counter_overflow_panics() {
        MetaEntry::Counter(u64::MAX).encode();
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the layout contract
    fn regions_do_not_overlap() {
        assert!(SLOT_BASE >= DATA_LINES);
        assert!(META_BASE >= SLOT_BASE + SLOT_LINES);
        assert!(MAC_BASE >= META_BASE + META_LINES);
    }

    #[test]
    fn entry_packing_locations() {
        let a = meta_loc_of_logical(LineAddr(0));
        let b = meta_loc_of_logical(LineAddr(7));
        let c = meta_loc_of_logical(LineAddr(8));
        assert_eq!(a.line, b.line);
        assert_eq!(b.offset, 56);
        assert_eq!(c.line, a.line.offset(1));
        assert_eq!(c.offset, 0);
    }

    #[test]
    fn logical_and_slot_entries_are_disjoint() {
        let mut m = MetadataStore::new();
        m.set_logical(LineAddr(3), MetaEntry::Remap(9));
        m.set_slot(3, MetaEntry::Counter(42));
        assert_eq!(m.logical(LineAddr(3)), MetaEntry::Remap(9));
        assert_eq!(m.slot(3), MetaEntry::Counter(42));
    }

    #[test]
    fn set_returns_dirty_line() {
        let mut m = MetadataStore::new();
        let (line, value) = m.set_logical(LineAddr(1), MetaEntry::Remap(77));
        assert_eq!(line, meta_loc_of_logical(LineAddr(1)).line);
        assert_eq!(
            MetaEntry::decode(value.read_u64(8)),
            MetaEntry::Remap(77),
            "entry 1 sits at byte offset 8"
        );
    }

    #[test]
    fn iteration_separates_kinds() {
        let mut m = MetadataStore::new();
        m.set_logical(LineAddr(10), MetaEntry::Remap(2));
        m.set_slot(2, MetaEntry::Counter(1));
        let logical: Vec<_> = m.iter_logical().collect();
        let slots: Vec<_> = m.iter_slots().collect();
        assert_eq!(logical, vec![(LineAddr(10), MetaEntry::Remap(2))]);
        assert_eq!(slots, vec![(2, MetaEntry::Counter(1))]);
    }

    #[test]
    fn round_trip_through_raw_lines() {
        let mut m = MetadataStore::new();
        m.set_logical(LineAddr(100), MetaEntry::Remap(55));
        m.set_slot(55, MetaEntry::Counter(7));
        // Recovery path: rebuild from raw lines.
        let rebuilt = MetadataStore::from_lines(m.lines().clone());
        assert_eq!(rebuilt.logical(LineAddr(100)), MetaEntry::Remap(55));
        assert_eq!(rebuilt.slot(55), MetaEntry::Counter(7));
    }

    #[test]
    fn leaf_indices_are_dense() {
        assert_eq!(leaf_index_of_meta_line(LineAddr(META_BASE)), 0);
        assert_eq!(
            leaf_index_of_meta_line(LineAddr(META_BASE + META_LINES - 1)),
            META_LINES - 1
        );
    }
}
