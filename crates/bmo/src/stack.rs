//! The BMO stack registry: one description per backend memory operation,
//! consumed by every layer.
//!
//! Each BMO registers a [`Bmo`] implementation contributing four things:
//!
//! * **(a)** its sub-operation graph fragment ([`Bmo::sub_ops`], chained by
//!   intra edges in declaration order) plus the inter-BMO edges it provides
//!   ([`Bmo::inter_edges`], named source → sink pairs);
//! * **(b)** its functional read/write transform ([`Bmo::transform`]), the
//!   stage [`crate::pipeline::BmoPipeline`] enables when the BMO is present;
//! * **(c)** its metadata/cache footprint ([`Bmo::footprint`]);
//! * **(d)** its pre-executability classification ([`Bmo::pre_exec`]):
//!   whether the BMO's sub-operations can start from the write's address,
//!   its data, or need both (§4.2).
//!
//! A [`BmoStack`] is an ordered subset of registered BMOs. The timing graph
//! ([`BmoStack::graph`]), the functional pipeline, the controller's
//! pre-execution paths, and the CLI all derive from the same stack, so any
//! subset and ordering — encryption-only, integrity+ECC, the full
//! seven-BMO stack — is selectable from config or `janus-cli --bmos`.
//!
//! Graph composition happens in two phases so that a stack's graph is
//! independent of *which* BMOs are absent: first every member's fragment is
//! added (nodes + intra chain) in stack order, then every member's declared
//! inter edges are added in stack order, silently skipping edges whose
//! endpoint belongs to a BMO not in the stack. For the default paper stack
//! this reproduces [`DepGraph::standard`] node-for-node and
//! adjacency-for-adjacency, which is what pins the paper's figures.

use std::fmt;

use janus_sim::time::Cycles;

use crate::latency::BmoLatencies;
use crate::subop::{BmoKind, DepGraph, EdgeKind, ExternalClass, SubOp};

/// Identifier of a registered BMO.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BmoId {
    /// Counter-mode encryption (E1–E4).
    Encryption,
    /// Bonsai-Merkle-Tree integrity verification (I1–I3).
    Integrity,
    /// Fingerprint deduplication (D1–D4).
    Dedup,
    /// Inline compression (C1).
    Compression,
    /// Start-Gap wear-leveling (W1).
    WearLeveling,
    /// SECDED error correction (EC1).
    Ecc,
    /// Oblivious frame relocation (O1).
    Oram,
}

impl BmoId {
    /// Every registered BMO, in canonical (paper Table 1) order.
    pub const ALL: [BmoId; 7] = [
        BmoId::Encryption,
        BmoId::Integrity,
        BmoId::Dedup,
        BmoId::Compression,
        BmoId::WearLeveling,
        BmoId::Ecc,
        BmoId::Oram,
    ];

    /// The short id used by config files and `--bmos` lists.
    pub fn as_str(self) -> &'static str {
        match self {
            BmoId::Encryption => "enc",
            BmoId::Integrity => "int",
            BmoId::Dedup => "dedup",
            BmoId::Compression => "comp",
            BmoId::WearLeveling => "wear",
            BmoId::Ecc => "ecc",
            BmoId::Oram => "oram",
        }
    }

    /// Parses a single id (short form or full name), case-insensitive.
    pub fn parse(s: &str) -> Result<BmoId, StackError> {
        match s.trim().to_ascii_lowercase().as_str() {
            "enc" | "encryption" => Ok(BmoId::Encryption),
            "int" | "integrity" => Ok(BmoId::Integrity),
            "dedup" | "dedupe" | "deduplication" => Ok(BmoId::Dedup),
            "comp" | "compression" => Ok(BmoId::Compression),
            "wear" | "wl" | "wear-leveling" => Ok(BmoId::WearLeveling),
            "ecc" => Ok(BmoId::Ecc),
            "oram" => Ok(BmoId::Oram),
            _ => Err(StackError::UnknownId(s.trim().to_string())),
        }
    }

    /// The registry entry for this id.
    pub fn spec(self) -> &'static dyn Bmo {
        match self {
            BmoId::Encryption => &Encryption,
            BmoId::Integrity => &Integrity,
            BmoId::Dedup => &Dedup,
            BmoId::Compression => &Compression,
            BmoId::WearLeveling => &WearLeveling,
            BmoId::Ecc => &Ecc,
            BmoId::Oram => &Oram,
        }
    }
}

impl fmt::Display for BmoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The functional stage a BMO contributes to the write/read transform —
/// [`crate::pipeline::BmoPipeline`] enables exactly the stages of its stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Transform {
    /// Content-addressed slot allocation; duplicate writes are cancelled.
    DedupSlots,
    /// Payload compression before any cipher stage.
    CompressPayload,
    /// Counter-mode encryption plus a keyed MAC of the stored payload.
    EncryptPayload,
    /// SECDED check bytes over the stored payload.
    EccPayload,
    /// Merkle tree over the co-located counter/remap metadata region.
    MerkleMetadata,
    /// Start-Gap remap of slot frames to level write wear.
    WearRemap,
    /// Oblivious relocation of slot frames on every fresh write.
    OramRelocate,
}

/// Metadata/cache footprint of one BMO (§5 overhead discussion).
#[derive(Clone, Copy, Debug)]
pub struct Footprint {
    /// Bytes of co-located per-line NVM metadata the BMO consumes.
    pub meta_bytes_per_line: u32,
    /// Controller-side SRAM (caches, registers, stash) in bytes.
    pub sram_bytes: u64,
    /// One-line description of what the footprint holds.
    pub note: &'static str,
}

/// One registered backend memory operation.
///
/// Implementations are unit structs; the registry hands out `&'static dyn
/// Bmo` via [`BmoId::spec`]. Everything a layer needs to know about a BMO —
/// timing fragment, functional stage, footprint, pre-executability — comes
/// from here, so adding a BMO means adding one impl and one `BmoId`.
pub trait Bmo {
    /// The BMO's registry id.
    fn id(&self) -> BmoId;
    /// Human-readable name (for `--list-bmos` and docs).
    fn name(&self) -> &'static str;
    /// The sub-op fragment, in intra-chain order: consecutive sub-ops are
    /// linked by [`EdgeKind::Intra`] edges when the graph is composed.
    fn sub_ops(&self, lat: &BmoLatencies) -> Vec<SubOp>;
    /// Inter-BMO edges this BMO *provides* (its own node is the source),
    /// as `(from, to)` sub-op names. Edges whose sink belongs to a BMO
    /// absent from the stack are skipped during composition.
    fn inter_edges(&self) -> &'static [(&'static str, &'static str)];
    /// The functional stage the pipeline enables for this BMO.
    fn transform(&self) -> Transform;
    /// Metadata/cache footprint.
    fn footprint(&self) -> Footprint;
    /// Pre-executability class: the union of the direct external inputs of
    /// the BMO's own sub-ops (before ancestor merging).
    fn pre_exec(&self) -> ExternalClass;
}

fn op(
    name: &'static str,
    bmo: BmoKind,
    latency: Cycles,
    needs_addr: bool,
    needs_data: bool,
    skip_if_dup: bool,
) -> SubOp {
    SubOp {
        name,
        bmo,
        latency,
        needs_addr,
        needs_data,
        skip_if_dup,
    }
}

struct Encryption;

impl Bmo for Encryption {
    fn id(&self) -> BmoId {
        BmoId::Encryption
    }
    fn name(&self) -> &'static str {
        "counter-mode encryption"
    }
    fn sub_ops(&self, lat: &BmoLatencies) -> Vec<SubOp> {
        use BmoKind::Encryption as E;
        vec![
            op("E1", E, lat.counter_gen, true, false, false),
            op("E2", E, lat.aes, false, false, false),
            op("E3", E, lat.xor, false, true, true),
            op("E4", E, lat.sha1, false, false, true),
        ]
    }
    fn inter_edges(&self) -> &'static [(&'static str, &'static str)] {
        // E1→D4: the address mapping co-locates with the counter.
        // E1→I1: the Merkle tree covers the latest counter.
        // E3→EC1: check bytes protect the ciphertext actually stored.
        &[("E1", "D4"), ("E1", "I1"), ("E3", "EC1")]
    }
    fn transform(&self) -> Transform {
        Transform::EncryptPayload
    }
    fn footprint(&self) -> Footprint {
        Footprint {
            meta_bytes_per_line: 8,
            sram_bytes: 64 * 1024,
            note: "per-line write counter (co-located) + counter cache",
        }
    }
    fn pre_exec(&self) -> ExternalClass {
        ExternalClass::Both // E1 needs the address, E3 needs the data.
    }
}

struct Integrity;

impl Bmo for Integrity {
    fn id(&self) -> BmoId {
        BmoId::Integrity
    }
    fn name(&self) -> &'static str {
        "Merkle-tree integrity"
    }
    fn sub_ops(&self, lat: &BmoLatencies) -> Vec<SubOp> {
        use BmoKind::Integrity as I;
        vec![
            op("I1", I, lat.sha1, false, false, false),
            op(
                "I2",
                I,
                lat.sha1 * lat.merkle_levels.saturating_sub(2) as u64,
                false,
                false,
                false,
            ),
            op("I3", I, lat.sha1, false, false, false),
        ]
    }
    fn inter_edges(&self) -> &'static [(&'static str, &'static str)] {
        &[] // The tree root is terminal; other BMOs feed it.
    }
    fn transform(&self) -> Transform {
        Transform::MerkleMetadata
    }
    fn footprint(&self) -> Footprint {
        Footprint {
            meta_bytes_per_line: 0,
            sram_bytes: 128 * 1024,
            note: "tree nodes over the metadata region + node cache",
        }
    }
    fn pre_exec(&self) -> ExternalClass {
        ExternalClass::None // Driven purely through inter edges (E1/D2 → I1).
    }
}

struct Dedup;

impl Bmo for Dedup {
    fn id(&self) -> BmoId {
        BmoId::Dedup
    }
    fn name(&self) -> &'static str {
        "fingerprint deduplication"
    }
    fn sub_ops(&self, lat: &BmoLatencies) -> Vec<SubOp> {
        use BmoKind::Dedup as D;
        vec![
            op("D1", D, lat.dedup_hash, false, true, false),
            op("D2", D, lat.dedup_lookup, false, false, false),
            op("D3", D, lat.map_update, true, false, false),
            op("D4", D, lat.aes, false, false, false),
        ]
    }
    fn inter_edges(&self) -> &'static [(&'static str, &'static str)] {
        // D2→E3: duplicate writes are not encrypted.
        // D2→I1: the tree covers the remap entry.
        // D2→EC1: duplicates store no line, so no check bytes either.
        &[("D2", "E3"), ("D2", "I1"), ("D2", "EC1")]
    }
    fn transform(&self) -> Transform {
        Transform::DedupSlots
    }
    fn footprint(&self) -> Footprint {
        Footprint {
            meta_bytes_per_line: 8,
            sram_bytes: 256 * 1024,
            note: "remap entry (co-located) + fingerprint store",
        }
    }
    fn pre_exec(&self) -> ExternalClass {
        ExternalClass::Both // D1 needs the data, D3 needs the address.
    }
}

struct Compression;

impl Bmo for Compression {
    fn id(&self) -> BmoId {
        BmoId::Compression
    }
    fn name(&self) -> &'static str {
        "inline compression"
    }
    fn sub_ops(&self, _lat: &BmoLatencies) -> Vec<SubOp> {
        vec![op(
            "C1",
            BmoKind::Compression,
            Cycles::from_ns(20),
            false,
            true,
            true,
        )]
    }
    fn inter_edges(&self) -> &'static [(&'static str, &'static str)] {
        // C1→E3: the compressed data is what gets encrypted.
        // C1→EC1: …and what the check bytes protect when unencrypted.
        &[("C1", "E3"), ("C1", "EC1")]
    }
    fn transform(&self) -> Transform {
        Transform::CompressPayload
    }
    fn footprint(&self) -> Footprint {
        Footprint {
            meta_bytes_per_line: 1,
            sram_bytes: 0,
            note: "scheme tag in the per-slot auxiliary line",
        }
    }
    fn pre_exec(&self) -> ExternalClass {
        ExternalClass::Data
    }
}

struct WearLeveling;

impl Bmo for WearLeveling {
    fn id(&self) -> BmoId {
        BmoId::WearLeveling
    }
    fn name(&self) -> &'static str {
        "Start-Gap wear-leveling"
    }
    fn sub_ops(&self, _lat: &BmoLatencies) -> Vec<SubOp> {
        vec![op(
            "W1",
            BmoKind::WearLeveling,
            Cycles::from_ns(1),
            true,
            false,
            false,
        )]
    }
    fn inter_edges(&self) -> &'static [(&'static str, &'static str)] {
        // W1→D3: the mapping update uses the wear-leveled address.
        &[("W1", "D3")]
    }
    fn transform(&self) -> Transform {
        Transform::WearRemap
    }
    fn footprint(&self) -> Footprint {
        Footprint {
            meta_bytes_per_line: 0,
            sram_bytes: 48,
            note: "start/gap registers (persisted to one NVM line)",
        }
    }
    fn pre_exec(&self) -> ExternalClass {
        ExternalClass::Addr
    }
}

struct Ecc;

impl Bmo for Ecc {
    fn id(&self) -> BmoId {
        BmoId::Ecc
    }
    fn name(&self) -> &'static str {
        "SECDED error correction"
    }
    fn sub_ops(&self, _lat: &BmoLatencies) -> Vec<SubOp> {
        vec![op(
            "EC1",
            BmoKind::Ecc,
            Cycles::from_ns(2),
            false,
            true,
            true,
        )]
    }
    fn inter_edges(&self) -> &'static [(&'static str, &'static str)] {
        &[] // Terminal: consumes the stored payload, feeds nothing.
    }
    fn transform(&self) -> Transform {
        Transform::EccPayload
    }
    fn footprint(&self) -> Footprint {
        Footprint {
            meta_bytes_per_line: 8,
            sram_bytes: 0,
            note: "8 SECDED check bytes in the per-slot auxiliary line",
        }
    }
    fn pre_exec(&self) -> ExternalClass {
        ExternalClass::Data
    }
}

struct Oram;

impl Bmo for Oram {
    fn id(&self) -> BmoId {
        BmoId::Oram
    }
    fn name(&self) -> &'static str {
        "oblivious frame relocation"
    }
    fn sub_ops(&self, _lat: &BmoLatencies) -> Vec<SubOp> {
        vec![op(
            "O1",
            BmoKind::Oram,
            Cycles::from_ns(1000),
            true,
            false,
            true,
        )]
    }
    fn inter_edges(&self) -> &'static [(&'static str, &'static str)] {
        // O1→W1: wear-leveling remaps the already-relocated frame.
        &[("O1", "W1")]
    }
    fn transform(&self) -> Transform {
        Transform::OramRelocate
    }
    fn footprint(&self) -> Footprint {
        Footprint {
            meta_bytes_per_line: 8,
            sram_bytes: 8,
            note: "position-map entries (persisted) + epoch register",
        }
    }
    fn pre_exec(&self) -> ExternalClass {
        ExternalClass::Addr
    }
}

/// Errors from building or parsing a [`BmoStack`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StackError {
    /// An id string matched no registered BMO.
    UnknownId(String),
    /// The same BMO appeared twice in one stack.
    Duplicate(BmoId),
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::UnknownId(s) => {
                let valid: Vec<&str> = BmoId::ALL.iter().map(|b| b.as_str()).collect();
                write!(
                    f,
                    "unknown BMO id \"{s}\" (valid ids: {}, or \"none\")",
                    valid.join(", ")
                )
            }
            StackError::Duplicate(id) => write!(f, "BMO \"{id}\" listed twice in the stack"),
        }
    }
}

impl std::error::Error for StackError {}

/// One edge the checked composer ([`BmoStack::try_graph`]) had to skip,
/// with the sub-op names declared by the offending [`Bmo::inter_edges`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComposeIssue {
    /// Declared source sub-op name.
    pub from: &'static str,
    /// Declared sink sub-op name.
    pub to: &'static str,
    /// Why the edge was rejected.
    pub error: crate::subop::EdgeError,
}

/// An ordered subset of registered BMOs — the single source of truth for
/// the timing graph, the functional pipeline, and pre-execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BmoStack {
    members: Vec<BmoId>,
}

impl BmoStack {
    /// Builds a stack from an ordered list of ids. Duplicates are rejected;
    /// an empty stack is valid (raw NVM, no backend operations).
    pub fn new(members: impl IntoIterator<Item = BmoId>) -> Result<BmoStack, StackError> {
        let members: Vec<BmoId> = members.into_iter().collect();
        for (i, id) in members.iter().enumerate() {
            if members[..i].contains(id) {
                return Err(StackError::Duplicate(*id));
            }
        }
        Ok(BmoStack { members })
    }

    /// The paper's evaluated trio: encryption, integrity, deduplication.
    pub fn paper() -> BmoStack {
        BmoStack {
            members: vec![BmoId::Encryption, BmoId::Integrity, BmoId::Dedup],
        }
    }

    /// The ablation study's five-BMO stack: the paper trio plus inline
    /// compression and wear-leveling.
    pub fn extended() -> BmoStack {
        BmoStack {
            members: vec![
                BmoId::Encryption,
                BmoId::Integrity,
                BmoId::Dedup,
                BmoId::Compression,
                BmoId::WearLeveling,
            ],
        }
    }

    /// Every registered BMO, in canonical order.
    pub fn all() -> BmoStack {
        BmoStack {
            members: BmoId::ALL.to_vec(),
        }
    }

    /// Parses a comma-separated id list (`"enc,int,dedup"`). The literal
    /// `"none"` yields the empty stack.
    pub fn parse(s: &str) -> Result<BmoStack, StackError> {
        if s.trim().eq_ignore_ascii_case("none") {
            return BmoStack::new([]);
        }
        let ids: Result<Vec<BmoId>, StackError> = s.split(',').map(BmoId::parse).collect();
        BmoStack::new(ids?)
    }

    /// The members in stack order.
    pub fn members(&self) -> &[BmoId] {
        &self.members
    }

    /// Whether `id` is in the stack.
    pub fn contains(&self, id: BmoId) -> bool {
        self.members.contains(&id)
    }

    /// Whether any member contributes the given functional transform.
    pub fn has_transform(&self, t: Transform) -> bool {
        self.members.iter().any(|m| m.spec().transform() == t)
    }

    /// The comma-separated id list (`parse` round-trips it).
    pub fn id_list(&self) -> String {
        if self.members.is_empty() {
            return "none".to_string();
        }
        let ids: Vec<&str> = self.members.iter().map(|m| m.as_str()).collect();
        ids.join(",")
    }

    /// Composes the stack's sub-operation dependency graph.
    ///
    /// Phase 1 adds each member's fragment (nodes chained by intra edges)
    /// in stack order; phase 2 adds each member's provided inter edges in
    /// stack order, skipping edges whose endpoint is not in the graph.
    pub fn graph(&self, lat: &BmoLatencies) -> DepGraph {
        let (g, issues) = self.try_graph(lat);
        assert!(
            issues.is_empty(),
            "stack {self} does not compose cleanly: {issues:?}"
        );
        g
    }

    /// Checked composition: same two-phase algorithm as [`BmoStack::graph`],
    /// but edge insertions that would introduce a cycle or duplicate an
    /// existing edge are collected as [`ComposeIssue`]s (and skipped)
    /// instead of panicking. The structural linter sweeps this over every
    /// stack permutation.
    pub fn try_graph(&self, lat: &BmoLatencies) -> (DepGraph, Vec<ComposeIssue>) {
        let mut g = DepGraph::new();
        let mut issues = Vec::new();
        for id in &self.members {
            let mut prev: Option<(crate::subop::NodeId, &'static str)> = None;
            for sub in id.spec().sub_ops(lat) {
                let name = sub.name;
                let n = g.add_node(sub);
                if let Some((p, pname)) = prev {
                    if let Err(error) = g.try_add_edge(p, n, EdgeKind::Intra) {
                        issues.push(ComposeIssue {
                            from: pname,
                            to: name,
                            error,
                        });
                    }
                }
                prev = Some((n, name));
            }
        }
        for id in &self.members {
            for &(from, to) in id.spec().inter_edges() {
                if let (Some(f), Some(t)) = (g.node_by_name(from), g.node_by_name(to)) {
                    if let Err(error) = g.try_add_edge(f, t, EdgeKind::Inter) {
                        issues.push(ComposeIssue { from, to, error });
                    }
                }
            }
        }
        (g, issues)
    }
}

impl fmt::Display for BmoStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id_list())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The linchpin of the byte-for-byte acceptance criterion: the default
    /// stack's composed graph is *identical* to the legacy hand-written
    /// Figure 6 graph — same nodes in the same order, same adjacency-list
    /// order (which drives topological order, hence unit scheduling, hence
    /// every figure), same topo order.
    #[test]
    fn paper_stack_graph_matches_legacy_standard() {
        let lat = BmoLatencies::paper();
        let g = BmoStack::paper().graph(&lat);

        let names: Vec<&str> = g.node_ids().map(|n| g.node(n).name).collect();
        assert_eq!(
            names,
            ["E1", "E2", "E3", "E4", "I1", "I2", "I3", "D1", "D2", "D3", "D4"]
        );
        let by = |n: &str| g.node_by_name(n).unwrap();
        // Adjacency-list order (insertion order of edges per endpoint).
        let succ_names =
            |n: &str| -> Vec<&str> { g.succs(by(n)).iter().map(|&s| g.node(s).name).collect() };
        let pred_names =
            |n: &str| -> Vec<&str> { g.preds(by(n)).iter().map(|&p| g.node(p).name).collect() };
        assert_eq!(succ_names("E1"), ["E2", "D4", "I1"]);
        assert_eq!(succ_names("D2"), ["D3", "E3", "I1"]);
        assert_eq!(pred_names("E3"), ["E2", "D2"]);
        assert_eq!(pred_names("I1"), ["E1", "D2"]);
        assert_eq!(pred_names("D4"), ["D3", "E1"]);
        // Topological order drives the engine's list scheduling directly.
        let topo: Vec<&str> = g.topo_order().iter().map(|&n| g.node(n).name).collect();
        assert_eq!(
            topo,
            ["D1", "D2", "D3", "E1", "I1", "I2", "I3", "D4", "E2", "E3", "E4"]
        );
        assert_eq!(g.critical_path(), Cycles(2764));
        assert_eq!(g.serial_sum(), lat.serialized_total());
    }

    #[test]
    fn extended_stack_graph_matches_legacy_extended() {
        let lat = BmoLatencies::paper();
        let g = BmoStack::extended().graph(&lat);
        assert_eq!(g.len(), 13);
        let by = |n: &str| g.node_by_name(n).unwrap();
        let pred_names =
            |n: &str| -> Vec<&str> { g.preds(by(n)).iter().map(|&p| g.node(p).name).collect() };
        assert_eq!(pred_names("E3"), ["E2", "D2", "C1"]);
        assert_eq!(pred_names("D3"), ["D2", "W1"]);
    }

    #[test]
    fn declared_pre_exec_matches_fragment_inputs() {
        // (d) must agree with (a): the declared class is the union of the
        // direct external inputs of the BMO's own sub-ops.
        let lat = BmoLatencies::paper();
        for id in BmoId::ALL {
            let ops = id.spec().sub_ops(&lat);
            let addr = ops.iter().any(|o| o.needs_addr);
            let data = ops.iter().any(|o| o.needs_data);
            let derived = match (addr, data) {
                (true, true) => ExternalClass::Both,
                (true, false) => ExternalClass::Addr,
                (false, true) => ExternalClass::Data,
                (false, false) => ExternalClass::None,
            };
            assert_eq!(id.spec().pre_exec(), derived, "{id}");
        }
    }

    #[test]
    fn every_subset_and_order_composes() {
        let lat = BmoLatencies::paper();
        // All 128 subsets in canonical order compose into acyclic graphs
        // with serialized ≥ parallelized latency.
        for mask in 0u32..128 {
            let members: Vec<BmoId> = BmoId::ALL
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &id)| id)
                .collect();
            let stack = BmoStack::new(members).unwrap();
            let g = stack.graph(&lat);
            assert_eq!(g.topo_order().len(), g.len(), "cycle in {stack}");
            assert!(g.serial_sum() >= g.critical_path(), "{stack}");
        }
    }

    #[test]
    fn parse_round_trips_and_rejects_typos() {
        let s = BmoStack::parse("enc,int,dedup").unwrap();
        assert_eq!(s, BmoStack::paper());
        assert_eq!(BmoStack::parse(&s.id_list()).unwrap(), s);
        assert_eq!(BmoStack::parse("none").unwrap().members().len(), 0);
        assert_eq!(
            BmoStack::parse("NONE").unwrap(),
            BmoStack::parse("none").unwrap()
        );

        let err = BmoStack::parse("enc,intt").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("intt"), "{msg}");
        for id in BmoId::ALL {
            assert!(msg.contains(id.as_str()), "{msg} missing {id}");
        }

        assert_eq!(
            BmoStack::parse("enc,enc"),
            Err(StackError::Duplicate(BmoId::Encryption))
        );
    }

    #[test]
    fn ids_round_trip_through_parse() {
        for id in BmoId::ALL {
            assert_eq!(BmoId::parse(id.as_str()).unwrap(), id);
            assert_eq!(BmoId::parse(&id.as_str().to_uppercase()).unwrap(), id);
        }
        assert!(BmoId::parse("quantum").is_err());
    }

    #[test]
    fn transforms_are_one_to_one() {
        let mut ts: Vec<Transform> = BmoId::ALL.iter().map(|id| id.spec().transform()).collect();
        let n = ts.len();
        ts.dedup();
        assert_eq!(ts.len(), n, "two BMOs claim the same transform");
        assert!(BmoStack::paper().has_transform(Transform::EncryptPayload));
        assert!(!BmoStack::paper().has_transform(Transform::EccPayload));
    }

    #[test]
    fn footprints_are_described() {
        for id in BmoId::ALL {
            assert!(!id.spec().footprint().note.is_empty(), "{id}");
            assert_eq!(id.spec().id(), id);
            assert!(!id.spec().name().is_empty());
        }
    }
}
