#![warn(missing_docs)]

//! # janus-bmo — backend memory operations: graphs, timing, and function
//!
//! *Backend memory operations* (BMOs) are the memory-controller-side
//! operations an NVM system performs on every write: encryption, integrity
//! verification, deduplication, compression, wear-leveling, … (paper
//! Table 1). This crate contains everything about BMOs themselves:
//!
//! * [`latency`] — the paper's latency parameters and the Table 1 inventory.
//! * [`subop`] — the sub-operation dependency graph of §3.1/Figure 6:
//!   intra-operation, inter-operation, and external (address/data)
//!   dependencies, plus the parallelization and pre-execution analyses
//!   (which sub-operation sets may run in parallel; which are
//!   address-dependent, data-dependent, or both).
//! * [`engine`] — the timing engine: schedules a write's sub-operations on
//!   the shared BMO units in **serialized** or **parallelized** mode, with
//!   support for staged external inputs (pre-execution) and invalidation-
//!   driven rescheduling.
//! * [`metadata`], [`encryption`], [`integrity`], [`dedup`] — the functional
//!   state of the three evaluated BMOs: co-located counter/remap metadata
//!   (the DeWrite scheme), counter-mode AES with per-line MACs, a sparse
//!   SHA-1 Bonsai Merkle Tree, and a reference-counted dedup store.
//! * [`stack`] — the BMO registry: each BMO contributes its graph fragment,
//!   functional transform, footprint, and pre-executability through one
//!   [`stack::Bmo`] trait; a [`stack::BmoStack`] is an ordered subset that
//!   every layer (timing graph, pipeline, controller, CLI) consumes.
//! * [`pipeline`] — composes a stack's transforms into a functional
//!   write/read pipeline with end-to-end verification and crash recovery.
//!
//! # Example: the Figure 6 dependency analysis
//!
//! ```
//! use janus_bmo::latency::BmoLatencies;
//! use janus_bmo::subop::{DepGraph, ExternalClass};
//!
//! let g = DepGraph::standard(&BmoLatencies::paper());
//! // E1–E2 are address-dependent; D1–D2 data-dependent; the rest both.
//! assert_eq!(g.external_class(g.node_by_name("E1").unwrap()), ExternalClass::Addr);
//! assert_eq!(g.external_class(g.node_by_name("D2").unwrap()), ExternalClass::Data);
//! assert_eq!(g.external_class(g.node_by_name("I3").unwrap()), ExternalClass::Both);
//! ```

pub mod compression;
pub mod dedup;
pub mod ecc;
pub mod encryption;
pub mod engine;
pub mod integrity;
pub mod latency;
pub mod metadata;
pub mod oram;
pub mod pipeline;
pub mod sched;
pub mod stack;
pub mod subop;
pub mod wear;

pub use engine::{BmoEngine, BmoMode, JobId};
pub use latency::BmoLatencies;
pub use pipeline::BmoPipeline;
pub use sched::SchedTemplate;
pub use stack::{Bmo, BmoId, BmoStack, ComposeIssue, Footprint, StackError, Transform};
pub use subop::{DepGraph, EdgeError, ExternalClass, NodeId};
