//! BMO latency parameters (Table 3) and the Table 1 inventory.

use janus_crypto::FingerprintAlgo;
use janus_sim::time::Cycles;

/// Latency parameters for the evaluated BMO set.
///
/// Defaults follow Table 3: "AES-128 (Encryption): 40 ns, SHA-1 (Integrity):
/// 40 ns, MD5 (Deduplication): 321 ns", with a 9-level Merkle tree for 4 GB
/// NVM ("if we assume each intermediate node is the hash of eight
/// lower-level nodes, then the height of the Merkle Tree is 9 in a system
/// with only 4GB NVM, resulting in a 360 ns latency for each write", §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BmoLatencies {
    /// E1: allocate/increment the line's encryption counter.
    pub counter_gen: Cycles,
    /// E2: AES-128 one-time-pad generation.
    pub aes: Cycles,
    /// E3: XOR of data with the pad.
    pub xor: Cycles,
    /// E4 & per-Merkle-node: SHA-1.
    pub sha1: Cycles,
    /// D1: fingerprint of the line (depends on [`Self::dedup_algo`]).
    pub dedup_hash: Cycles,
    /// D2: dedup table lookup.
    pub dedup_lookup: Cycles,
    /// D3: address-mapping table update.
    pub map_update: Cycles,
    /// Merkle tree height (number of hash levels including the leaf level).
    pub merkle_levels: u32,
    /// Which fingerprint algorithm `dedup_hash` corresponds to.
    pub dedup_algo: FingerprintAlgo,
}

impl BmoLatencies {
    /// The paper's default configuration (MD5 dedup, 9-level tree).
    pub fn paper() -> Self {
        BmoLatencies {
            counter_gen: Cycles::from_ns(1),
            aes: Cycles::from_ns(40),
            xor: Cycles::from_ns(1),
            sha1: Cycles::from_ns(40),
            dedup_hash: Cycles::from_ns(321),
            dedup_lookup: Cycles::from_ns(10),
            map_update: Cycles::from_ns(5),
            merkle_levels: 9,
            dedup_algo: FingerprintAlgo::Md5,
        }
    }

    /// The CRC-32 variant of §5.2.4 (Figure 12): "MD5 takes around 4× longer
    /// than CRC-32".
    pub fn with_crc32(mut self) -> Self {
        self.dedup_hash = Cycles::from_ns(321 / 4);
        self.dedup_algo = FingerprintAlgo::Crc32;
        self
    }

    /// Serialized sum of every sub-operation — the extra write latency of a
    /// system that treats BMOs as monolithic (§2.3).
    pub fn serialized_total(&self) -> Cycles {
        self.dedup_hash
            + self.dedup_lookup
            + self.map_update
            + self.aes // D4: encrypt mapping entry
            + self.counter_gen
            + self.aes // E2
            + self.xor
            + self.sha1 // E4 MAC
            + self.sha1 * self.merkle_levels as u64
    }
}

impl Default for BmoLatencies {
    fn default() -> Self {
        Self::paper()
    }
}

/// One row of the paper's Table 1: the landscape of BMOs in NVM systems.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BmoInventoryRow {
    /// Category ("Security", "Bandwidth", "Durability").
    pub category: &'static str,
    /// Operation name.
    pub name: &'static str,
    /// What it does.
    pub description: &'static str,
    /// Extra latency on writes, in nanoseconds (min, max).
    pub extra_latency_ns: (u64, u64),
}

/// The full Table 1 inventory.
pub fn table1() -> Vec<BmoInventoryRow> {
    vec![
        BmoInventoryRow {
            category: "Security",
            name: "Encryption",
            description: "Ensures data confidentiality; counter-mode encryption is typical in NVM",
            extra_latency_ns: (40, 40),
        },
        BmoInventoryRow {
            category: "Security",
            name: "Integrity Verification",
            description: "Prevents unauthorized modification; typically a Merkle (hash) tree",
            extra_latency_ns: (360, 360),
        },
        BmoInventoryRow {
            category: "Security",
            name: "ORAM",
            description: "Hides the memory access pattern by relocating data after every access",
            extra_latency_ns: (1000, 1000),
        },
        BmoInventoryRow {
            category: "Bandwidth",
            name: "Deduplication",
            description: "Cancels writes whose data already exists to save write bandwidth",
            extra_latency_ns: (91, 321),
        },
        BmoInventoryRow {
            category: "Bandwidth",
            name: "Compression",
            description: "Shrinks memory accesses to save bandwidth",
            extra_latency_ns: (5, 30),
        },
        BmoInventoryRow {
            category: "Durability",
            name: "Error Correction",
            description: "Corrects memory errors (ECC codes, error-correcting pointers)",
            extra_latency_ns: (1, 3),
        },
        BmoInventoryRow {
            category: "Durability",
            name: "Wear-leveling",
            description: "Spreads writes to even out cell wear-out",
            extra_latency_ns: (1, 1),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_serialized_total_is_hundreds_of_ns() {
        let total = BmoLatencies::paper().serialized_total();
        // §2.3: BMOs "add extra hundreds of nanoseconds of latency" and the
        // critical latency "increases by more than 10 times" over the 15 ns
        // writeback.
        assert!(total.as_ns() > 700.0 && total.as_ns() < 900.0, "{total}");
        assert!(total.as_ns() > 10.0 * 15.0);
    }

    #[test]
    fn crc_variant_is_about_4x_cheaper_hash() {
        let md5 = BmoLatencies::paper();
        let crc = BmoLatencies::paper().with_crc32();
        let ratio = md5.dedup_hash.0 as f64 / crc.dedup_hash.0 as f64;
        assert!((3.5..=4.5).contains(&ratio), "ratio={ratio}");
        assert_eq!(crc.dedup_algo, FingerprintAlgo::Crc32);
    }

    #[test]
    fn merkle_latency_matches_paper() {
        let l = BmoLatencies::paper();
        // 9 levels × 40 ns = 360 ns (Table 1 row for integrity).
        assert_eq!((l.sha1 * l.merkle_levels as u64).as_ns(), 360.0);
    }

    #[test]
    fn table1_has_all_seven_rows() {
        let t = table1();
        assert_eq!(t.len(), 7);
        assert_eq!(t.iter().filter(|r| r.category == "Security").count(), 3);
        assert_eq!(t.iter().filter(|r| r.category == "Bandwidth").count(), 2);
        assert_eq!(t.iter().filter(|r| r.category == "Durability").count(), 2);
        for row in &t {
            assert!(row.extra_latency_ns.0 <= row.extra_latency_ns.1);
        }
    }
}
