//! The deduplication store: fingerprint table, slot allocation, and
//! reference counting.
//!
//! "The hardware mechanism maintains a deduplication table that stores the
//! hashes (fingerprints) of existing data blocks to detect duplicates, and
//! an address mapping table to redirect the writes to the existing copy of
//! data in memory." (§3.1)
//!
//! Sub-operations D1 (hash data) and D2 (table lookup) are realized by
//! [`DedupStore::lookup`]; D3 (mapping update) by the caller recording the
//! returned slot in the metadata store; D4 (encrypt + write back the mapping
//! entry) by the encryption engine.
//!
//! Fingerprints may collide — realistically so for CRC-32 (§5.2.4). The
//! store verifies candidate duplicates against the actual stored value (the
//! hardware's read-and-compare) and falls back to a fresh slot on a
//! collision, so deduplication never corrupts data.

use janus_crypto::FingerprintAlgo;
use janus_nvm::line::Line;

/// Outcome of a dedup lookup for a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DedupOutcome {
    /// The value already exists in `slot`; the data write is cancelled.
    Duplicate {
        /// Slot holding the existing copy.
        slot: u64,
    },
    /// New value: store it in freshly allocated `slot`.
    Fresh {
        /// Newly allocated slot.
        slot: u64,
    },
}

impl DedupOutcome {
    /// The slot either way.
    pub fn slot(self) -> u64 {
        match self {
            DedupOutcome::Duplicate { slot } | DedupOutcome::Fresh { slot } => slot,
        }
    }

    /// Whether the write was a duplicate.
    pub fn is_duplicate(self) -> bool {
        matches!(self, DedupOutcome::Duplicate { .. })
    }
}

#[derive(Clone, Debug)]
struct SlotInfo {
    value: Line,
    refcount: u64,
    fingerprint: u128,
}

/// The deduplication store.
///
/// # Example
///
/// ```
/// use janus_bmo::dedup::DedupStore;
/// use janus_crypto::FingerprintAlgo;
/// use janus_nvm::line::Line;
///
/// let mut d = DedupStore::new(FingerprintAlgo::Md5);
/// let a = d.lookup(&Line::splat(1));
/// assert!(!a.is_duplicate());
/// let b = d.lookup(&Line::splat(1));
/// assert!(b.is_duplicate());
/// assert_eq!(a.slot(), b.slot());
/// ```
#[derive(Clone, Debug)]
pub struct DedupStore {
    algo: FingerprintAlgo,
    /// fingerprint → slots with that fingerprint (collision chain).
    table: janus_sim::hash::FxHashMap<u128, Vec<u64>>,
    slots: janus_sim::hash::FxHashMap<u64, SlotInfo>,
    /// Pure-function memo of `algo.fingerprint(line)`: every write is
    /// fingerprinted at least twice (once by the pre-execution predictor's
    /// [`DedupStore::peek`], once by the committed write's
    /// [`DedupStore::lookup`]) and duplicate-heavy workloads re-hash the
    /// same values endlessly, so a content-keyed cache removes most MD5
    /// work from the hot path without changing a single outcome. `RefCell`
    /// because `peek` is `&self` by design (prediction must not mutate BMO
    /// state); the store is single-threaded like the rest of the engine.
    memo: std::cell::RefCell<janus_sim::hash::FxHashMap<Line, u128>>,
    free: Vec<u64>,
    next_slot: u64,
    hits: u64,
    misses: u64,
    collisions: u64,
}

impl DedupStore {
    /// Creates an empty store using `algo` for fingerprints.
    pub fn new(algo: FingerprintAlgo) -> Self {
        DedupStore {
            algo,
            table: janus_sim::hash::FxHashMap::with_capacity_and_hasher(1024, Default::default()),
            slots: janus_sim::hash::FxHashMap::with_capacity_and_hasher(1024, Default::default()),
            memo: std::cell::RefCell::new(janus_sim::hash::FxHashMap::with_capacity_and_hasher(
                1024,
                Default::default(),
            )),
            free: Vec::new(),
            next_slot: 0,
            hits: 0,
            misses: 0,
            collisions: 0,
        }
    }

    /// The fingerprint algorithm in use.
    pub fn algo(&self) -> FingerprintAlgo {
        self.algo
    }

    /// Memoized `algo.fingerprint(data)`. The memo only ever grows — entries
    /// for released slots stay valid (a fingerprint is a pure function of
    /// the bytes) and the key set is bounded by the distinct values the run
    /// ever wrote, the same bound as the slot table itself.
    fn fingerprint(&self, data: &Line) -> u128 {
        if let Some(&fp) = self.memo.borrow().get(data) {
            return fp;
        }
        let fp = self.algo.fingerprint(data.as_bytes());
        self.memo.borrow_mut().insert(*data, fp);
        fp
    }

    /// D1+D2: fingerprints `data` and either finds the existing copy
    /// (incrementing its refcount) or allocates a fresh slot with
    /// refcount 1. The caller is responsible for writing the data to a fresh
    /// slot and recording the mapping (D3/D4).
    pub fn lookup(&mut self, data: &Line) -> DedupOutcome {
        let fp = self.fingerprint(data);
        if let Some(chain) = self.table.get(&fp) {
            let mut collided = false;
            for &slot in chain {
                let info = self.slots.get(&slot).expect("table points at live slot");
                if info.value == *data {
                    self.hits += 1;
                    self.slots.get_mut(&slot).expect("live").refcount += 1;
                    return DedupOutcome::Duplicate { slot };
                }
                collided = true;
            }
            if collided {
                self.collisions += 1;
            }
        }
        self.misses += 1;
        let slot = self.free.pop().unwrap_or_else(|| {
            let s = self.next_slot;
            self.next_slot += 1;
            s
        });
        self.slots.insert(
            slot,
            SlotInfo {
                value: *data,
                refcount: 1,
                fingerprint: fp,
            },
        );
        self.table.entry(fp).or_default().push(slot);
        DedupOutcome::Fresh { slot }
    }

    /// Non-mutating duplicate check: the slot that `data` would dedup to,
    /// if any. Used by Janus to *predict* the dedup outcome during
    /// pre-execution without touching BMO metadata (requirement 1 of §3.2).
    pub fn peek(&self, data: &Line) -> Option<u64> {
        let fp = self.fingerprint(data);
        self.table.get(&fp).and_then(|chain| {
            chain
                .iter()
                .copied()
                .find(|slot| self.slots.get(slot).map(|i| &i.value) == Some(data))
        })
    }

    /// Releases one reference to `slot` (a logical line was overwritten or
    /// its pre-executed result discarded). Returns `true` if the slot was
    /// freed (refcount hit zero) — its NVM line and metadata may be reused.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not live.
    pub fn release(&mut self, slot: u64) -> bool {
        let info = self.slots.get_mut(&slot).expect("release of dead slot");
        info.refcount -= 1;
        if info.refcount > 0 {
            return false;
        }
        let info = self.slots.remove(&slot).expect("checked live");
        let chain = self
            .table
            .get_mut(&info.fingerprint)
            .expect("slot was indexed");
        chain.retain(|&s| s != slot);
        if chain.is_empty() {
            self.table.remove(&info.fingerprint);
        }
        self.free.push(slot);
        true
    }

    /// The plaintext value stored in a live slot.
    pub fn slot_value(&self, slot: u64) -> Option<&Line> {
        self.slots.get(&slot).map(|i| &i.value)
    }

    /// Current refcount of a slot (0 if dead).
    pub fn refcount(&self, slot: u64) -> u64 {
        self.slots.get(&slot).map_or(0, |i| i.refcount)
    }

    /// Whether a slot is live.
    pub fn is_live(&self, slot: u64) -> bool {
        self.slots.contains_key(&slot)
    }

    /// Number of live slots (distinct stored values).
    pub fn live_slots(&self) -> usize {
        self.slots.len()
    }

    /// `(hits, misses, collisions)` — Figure 12's dedup-ratio accounting.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.collisions)
    }

    /// Observed dedup ratio so far (hits / lookups).
    pub fn observed_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Registers a pre-existing slot during crash recovery.
    pub fn recover_slot(&mut self, slot: u64, value: Line, refcount: u64) {
        assert!(refcount > 0, "recovered slot must be referenced");
        assert!(!self.slots.contains_key(&slot), "slot recovered twice");
        let fp = self.fingerprint(&value);
        self.slots.insert(
            slot,
            SlotInfo {
                value,
                refcount,
                fingerprint: fp,
            },
        );
        self.table.entry(fp).or_default().push(slot);
        self.next_slot = self.next_slot.max(slot + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> DedupStore {
        DedupStore::new(FingerprintAlgo::Md5)
    }

    #[test]
    fn fresh_then_duplicate() {
        let mut d = store();
        let a = d.lookup(&Line::splat(1));
        let b = d.lookup(&Line::splat(1));
        let c = d.lookup(&Line::splat(2));
        assert_eq!(a, DedupOutcome::Fresh { slot: a.slot() });
        assert!(b.is_duplicate());
        assert_eq!(a.slot(), b.slot());
        assert!(!c.is_duplicate());
        assert_ne!(a.slot(), c.slot());
        assert_eq!(d.refcount(a.slot()), 2);
        assert_eq!(d.stats(), (1, 2, 0));
    }

    #[test]
    fn release_frees_and_allows_reuse() {
        let mut d = store();
        let a = d.lookup(&Line::splat(1)).slot();
        d.lookup(&Line::splat(1)); // refcount 2
        assert!(!d.release(a));
        assert!(d.release(a));
        assert!(!d.is_live(a));
        // A fresh value reuses the freed slot.
        let b = d.lookup(&Line::splat(3)).slot();
        assert_eq!(b, a);
    }

    #[test]
    fn freed_value_no_longer_dedups() {
        let mut d = store();
        let a = d.lookup(&Line::splat(1)).slot();
        d.release(a);
        let b = d.lookup(&Line::splat(1));
        assert!(!b.is_duplicate(), "freed value must not dedup");
    }

    #[test]
    fn observed_ratio() {
        let mut d = store();
        d.lookup(&Line::splat(1));
        d.lookup(&Line::splat(1));
        d.lookup(&Line::splat(1));
        d.lookup(&Line::splat(2));
        assert!((d.observed_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn crc_collisions_fall_back_to_fresh() {
        // Force a collision by using a contrived store with CRC and two
        // lines engineered to collide is hard; instead verify the chain
        // logic directly: two values sharing a fingerprint chain must not
        // dedup to each other.
        let mut d = DedupStore::new(FingerprintAlgo::Crc32);
        let a = d.lookup(&Line::splat(1)).slot();
        // Simulate a collision: manually register a second value under the
        // same fingerprint chain via recover_slot with a forged value, then
        // look up a third value that CRC-collides... Without real colliding
        // inputs, assert the verify step: a *different* value never dedups.
        let b = d.lookup(&Line::splat(2)).slot();
        assert_ne!(a, b);
        let (_, _, collisions) = d.stats();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn recover_rebuilds_table() {
        let mut d = store();
        d.recover_slot(5, Line::splat(9), 2);
        let again = d.lookup(&Line::splat(9));
        assert!(again.is_duplicate());
        assert_eq!(again.slot(), 5);
        assert_eq!(d.refcount(5), 3);
        // Fresh slots allocate past recovered indices.
        let fresh = d.lookup(&Line::splat(10)).slot();
        assert!(fresh >= 6);
    }

    #[test]
    #[should_panic(expected = "release of dead slot")]
    fn double_free_panics() {
        let mut d = store();
        let a = d.lookup(&Line::splat(1)).slot();
        d.release(a);
        d.release(a);
    }

    #[test]
    fn live_slot_count() {
        let mut d = store();
        d.lookup(&Line::splat(1));
        d.lookup(&Line::splat(1));
        d.lookup(&Line::splat(2));
        assert_eq!(d.live_slots(), 2);
    }
}
