//! The counter-mode encryption engine (sub-operations E1–E4, functional
//! side).
//!
//! Each dedup-heap slot is encrypted under a per-slot counter that
//! monotonically increases on reuse (E1), a one-time pad derived from the
//! counter and the slot's NVM address (E2), an XOR (E3), and a MAC over the
//! ciphertext and counter (E4).

use janus_crypto::aes::Aes128;
use janus_crypto::ctr::{decrypt_line, encrypt_line, line_mac, otp_for_line};
use janus_nvm::line::Line;

use crate::metadata::slot_data_addr;

/// An encrypted slot write ready to be placed in NVM.
#[derive(Clone, Copy, Debug)]
pub struct EncryptedWrite {
    /// The counter used (store in the slot's metadata entry).
    pub counter: u64,
    /// The ciphertext line.
    pub cipher: Line,
    /// `MAC = Hash(EncData ‖ Counter)`.
    pub mac: [u8; 20],
}

/// One slot's most recent encryption, remembered so the read path can skip
/// the pad and MAC recomputation. A slot's counter only changes when the
/// slot is rewritten, so between writes every read re-derives exactly the
/// OTP (four AES blocks) and MAC (a SHA-1 compress) this entry caches; the
/// entry is validated against the caller's `(counter, cipher)` before use,
/// so a stale or tampered line falls back to the real computation and the
/// observable behaviour is bit-identical.
#[derive(Clone, Copy, Debug)]
struct SlotCrypto {
    counter: u64,
    cipher: Line,
    mac: [u8; 20],
    plain: Line,
}

/// The engine: AES key plus the global counter allocator.
///
/// # Example
///
/// ```
/// use janus_bmo::encryption::EncryptionEngine;
/// use janus_nvm::line::Line;
///
/// let mut e = EncryptionEngine::new([7u8; 16]);
/// let w = e.encrypt_slot(3, &Line::splat(0x5A));
/// assert_eq!(e.decrypt_slot(3, w.counter, &w.cipher), Line::splat(0x5A));
/// assert!(e.verify_mac(&w.cipher, w.counter, &w.mac));
/// ```
#[derive(Clone, Debug)]
pub struct EncryptionEngine {
    aes: Aes128,
    next_counter: u64,
    /// slot → last write's crypto (see [`SlotCrypto`]); `RefCell` because
    /// the decrypt/verify side is `&self` by design. Bounded by the number
    /// of distinct slots ever written, like the dedup slot table.
    memo: std::cell::RefCell<janus_sim::hash::FxHashMap<u64, SlotCrypto>>,
}

impl EncryptionEngine {
    /// Creates an engine with the given 128-bit memory encryption key.
    pub fn new(key: [u8; 16]) -> Self {
        EncryptionEngine {
            aes: Aes128::new(key),
            next_counter: 1, // 0 is reserved for "never written"
            memo: std::cell::RefCell::new(janus_sim::hash::FxHashMap::with_capacity_and_hasher(
                1024,
                Default::default(),
            )),
        }
    }

    /// E1: allocates a fresh, globally unique counter.
    pub fn fresh_counter(&mut self) -> u64 {
        let c = self.next_counter;
        self.next_counter += 1;
        c
    }

    /// E2+E3+E4 for a slot write with a fresh counter.
    pub fn encrypt_slot(&mut self, slot: u64, data: &Line) -> EncryptedWrite {
        let counter = self.fresh_counter();
        self.encrypt_slot_with_counter(slot, counter, data)
    }

    /// E2+E3+E4 with an explicit counter (used when a pre-executed E1 result
    /// is being consumed).
    pub fn encrypt_slot_with_counter(
        &mut self,
        slot: u64,
        counter: u64,
        data: &Line,
    ) -> EncryptedWrite {
        let otp = otp_for_line(&self.aes, counter, slot_data_addr(slot).byte());
        let cipher = Line(encrypt_line(data.as_bytes(), &otp));
        let mac = line_mac(cipher.as_bytes(), counter);
        self.memo.borrow_mut().insert(
            slot,
            SlotCrypto {
                counter,
                cipher,
                mac,
                plain: *data,
            },
        );
        EncryptedWrite {
            counter,
            cipher,
            mac,
        }
    }

    /// Decrypts a slot's ciphertext under its counter.
    pub fn decrypt_slot(&self, slot: u64, counter: u64, cipher: &Line) -> Line {
        if let Some(m) = self.memo.borrow().get(&slot) {
            if m.counter == counter && m.cipher == *cipher {
                return m.plain;
            }
        }
        let otp = otp_for_line(&self.aes, counter, slot_data_addr(slot).byte());
        Line(decrypt_line(cipher.as_bytes(), &otp))
    }

    /// Checks the MAC a stored slot line should carry — the memoized fast
    /// path of the read side's integrity check. Equivalent to
    /// [`EncryptionEngine::verify_mac`] for lines this engine wrote; any
    /// divergence (stale counter, tampered cipher) recomputes honestly.
    pub fn stored_mac_matches(
        &self,
        slot: u64,
        counter: u64,
        cipher: &Line,
        mac: &[u8; 20],
    ) -> bool {
        if let Some(m) = self.memo.borrow().get(&slot) {
            if m.counter == counter && m.cipher == *cipher {
                return m.mac == *mac;
            }
        }
        line_mac(cipher.as_bytes(), counter) == *mac
    }

    /// Checks a slot's MAC.
    pub fn verify_mac(&self, cipher: &Line, counter: u64, mac: &[u8; 20]) -> bool {
        line_mac(cipher.as_bytes(), counter) == *mac
    }

    /// Restores the counter allocator after crash recovery: the next counter
    /// must exceed every persisted counter.
    pub fn bump_counter_floor(&mut self, seen: u64) {
        self.next_counter = self.next_counter.max(seen + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> EncryptionEngine {
        EncryptionEngine::new([0xAA; 16])
    }

    #[test]
    fn counters_are_unique_and_nonzero() {
        let mut e = engine();
        let a = e.fresh_counter();
        let b = e.fresh_counter();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn cipher_differs_from_plain_and_round_trips() {
        let mut e = engine();
        let data = Line::from_words(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let w = e.encrypt_slot(10, &data);
        assert_ne!(w.cipher, data);
        assert_eq!(e.decrypt_slot(10, w.counter, &w.cipher), data);
    }

    #[test]
    fn same_data_different_slots_gets_different_cipher() {
        let mut e = engine();
        let data = Line::splat(3);
        let w1 = e.encrypt_slot(1, &data);
        let w2 = e.encrypt_slot(2, &data);
        assert_ne!(
            w1.cipher, w2.cipher,
            "address and counter diversify the pad"
        );
    }

    #[test]
    fn counter_reuse_same_slot_changes_cipher() {
        let mut e = engine();
        let data = Line::splat(3);
        let w1 = e.encrypt_slot(1, &data);
        let w2 = e.encrypt_slot(1, &data);
        assert_ne!(w1.counter, w2.counter);
        assert_ne!(w1.cipher, w2.cipher);
    }

    #[test]
    fn mac_detects_tampering() {
        let mut e = engine();
        let w = e.encrypt_slot(5, &Line::splat(9));
        assert!(e.verify_mac(&w.cipher, w.counter, &w.mac));
        let mut tampered = w.cipher;
        tampered.0[0] ^= 1;
        assert!(!e.verify_mac(&tampered, w.counter, &w.mac));
        assert!(!e.verify_mac(&w.cipher, w.counter + 1, &w.mac));
    }

    #[test]
    fn wrong_key_fails_decrypt() {
        let mut e1 = engine();
        let e2 = EncryptionEngine::new([0xBB; 16]);
        let data = Line::splat(4);
        let w = e1.encrypt_slot(0, &data);
        assert_ne!(e2.decrypt_slot(0, w.counter, &w.cipher), data);
    }

    #[test]
    fn counter_floor_after_recovery() {
        let mut e = engine();
        e.bump_counter_floor(100);
        assert!(e.fresh_counter() > 100);
        e.bump_counter_floor(50); // lower floor is a no-op
        assert!(e.fresh_counter() > 100);
    }
}
