//! Path ORAM (Table 1, "Security / ORAM").
//!
//! Table 1's most expensive BMO (~1000 ns per access) hides *access
//! patterns*: an observer of the NVM address bus learns nothing about which
//! logical block a program touches. This module implements Stefanov et
//! al.'s Path ORAM (CCS 2013, the paper's citation \[83\]) — the scheme the
//! paper's ORAM row builds on:
//!
//! * a binary tree of buckets, each holding up to `Z` encrypted blocks;
//! * a *position map* assigning every block a uniformly random leaf,
//!   re-randomized on every access;
//! * a client-side *stash* for blocks that temporarily don't fit.
//!
//! Every access reads and rewrites one full root-to-leaf path — `(L+1)·Z`
//! blocks — which is where the ~1 µs latency (and why the evaluated system
//! uses the cheaper BMOs instead) comes from. The implementation is a
//! functional substrate with the scheme's two key invariants under test:
//! correctness (a read returns the last write) and bounded stash occupancy.

use std::collections::HashMap;

use janus_nvm::line::Line;
use janus_sim::rng::SimRng;

/// Blocks per bucket (the paper's recommended Z = 4).
pub const Z: usize = 4;

#[derive(Clone, Copy, Debug)]
struct Block {
    id: u64,
    leaf: u64,
    data: Line,
}

/// The ORAM. Stores up to roughly `2^levels` blocks obliviously.
///
/// # Example
///
/// ```
/// use janus_bmo::oram::PathOram;
/// use janus_nvm::line::Line;
///
/// let mut oram = PathOram::new(4, 7);
/// oram.write(3, Line::splat(9));
/// assert_eq!(oram.read(3), Some(Line::splat(9)));
/// assert_eq!(oram.read(99), None);
/// ```
#[derive(Clone, Debug)]
pub struct PathOram {
    levels: u32,
    buckets: Vec<Vec<Block>>,
    position: HashMap<u64, u64>,
    stash: Vec<Block>,
    rng: SimRng,
    accesses: u64,
    blocks_moved: u64,
    max_stash: usize,
}

impl PathOram {
    /// Creates an ORAM tree with `levels` levels below the root
    /// (`2^levels` leaves, `2^(levels+1) − 1` buckets).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is 0 or absurdly large.
    pub fn new(levels: u32, seed: u64) -> Self {
        assert!((1..=24).contains(&levels), "unreasonable tree height");
        let bucket_count = (1usize << (levels + 1)) - 1;
        PathOram {
            levels,
            buckets: vec![Vec::with_capacity(Z); bucket_count],
            position: HashMap::new(),
            stash: Vec::new(),
            rng: SimRng::new(seed),
            accesses: 0,
            blocks_moved: 0,
            max_stash: 0,
        }
    }

    /// Number of leaves.
    pub fn leaves(&self) -> u64 {
        1 << self.levels
    }

    /// Bucket index of the node at `level` on the path to `leaf`
    /// (level 0 = root).
    fn bucket_on_path(&self, leaf: u64, level: u32) -> usize {
        // Heap layout: root at 0; the path follows leaf's bits top-down.
        let node_in_level = leaf >> (self.levels - level);
        ((1u64 << level) - 1 + node_in_level) as usize
    }

    /// Whether the path to `leaf_a` passes through the level-`level` node
    /// of the path to `leaf_b`.
    fn paths_share(&self, leaf_a: u64, leaf_b: u64, level: u32) -> bool {
        (leaf_a >> (self.levels - level)) == (leaf_b >> (self.levels - level))
    }

    /// The core oblivious access: fetch the path of `id`'s current leaf,
    /// remap `id`, optionally update its data, and write the path back.
    fn access(&mut self, id: u64, new_data: Option<Line>) -> Option<Line> {
        self.accesses += 1;
        let known = self.position.contains_key(&id);
        if !known && new_data.is_none() {
            // Reading an absent block: perform a dummy access on a random
            // path (indistinguishable from a real one) and return nothing.
            let leaf = self.rng.gen_range(self.leaves());
            self.touch_path(leaf);
            return None;
        }
        let old_leaf = *self
            .position
            .entry(id)
            .or_insert_with(|| self.rng.gen_range(1 << self.levels));
        // Re-randomize the position BEFORE the path write-back.
        let new_leaf = self.rng.gen_range(self.leaves());
        self.position.insert(id, new_leaf);

        // Read the whole path into the stash.
        for level in 0..=self.levels {
            let b = self.bucket_on_path(old_leaf, level);
            self.blocks_moved += Z as u64;
            self.stash.append(&mut self.buckets[b]);
        }

        // Serve the request from the stash.
        let mut result = None;
        if let Some(blk) = self.stash.iter_mut().find(|b| b.id == id) {
            result = Some(blk.data);
            blk.leaf = new_leaf;
            if let Some(d) = new_data {
                blk.data = d;
            }
        } else if let Some(d) = new_data {
            self.stash.push(Block {
                id,
                leaf: new_leaf,
                data: d,
            });
        }

        // Write the path back, deepest level first, greedily placing stash
        // blocks whose assigned leaf shares the bucket.
        for level in (0..=self.levels).rev() {
            let bucket_idx = self.bucket_on_path(old_leaf, level);
            let mut placed = Vec::new();
            let mut i = 0;
            while i < self.stash.len() && placed.len() < Z {
                if self.paths_share(self.stash[i].leaf, old_leaf, level) {
                    placed.push(self.stash.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            self.blocks_moved += Z as u64;
            self.buckets[bucket_idx] = placed;
        }
        self.max_stash = self.max_stash.max(self.stash.len());
        result
    }

    /// A dummy path access (for absent reads).
    fn touch_path(&mut self, leaf: u64) {
        for level in 0..=self.levels {
            let b = self.bucket_on_path(leaf, level);
            self.blocks_moved += 2 * Z as u64; // read + write back
            let _ = &self.buckets[b];
        }
    }

    /// Obliviously writes `data` to block `id`.
    pub fn write(&mut self, id: u64, data: Line) {
        self.access(id, Some(data));
    }

    /// Obliviously reads block `id` (`None` if never written).
    pub fn read(&mut self, id: u64) -> Option<Line> {
        self.access(id, None)
    }

    /// Total accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Blocks transferred (the bandwidth amplification: `2·(L+1)·Z` per
    /// access).
    pub fn blocks_moved(&self) -> u64 {
        self.blocks_moved
    }

    /// Largest stash occupancy observed.
    pub fn max_stash(&self) -> usize {
        self.max_stash
    }

    /// Current stash occupancy.
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_returns_last_write() {
        let mut oram = PathOram::new(6, 1);
        let mut model = HashMap::new();
        let mut rng = SimRng::new(2);
        for step in 0..2_000u64 {
            let id = rng.gen_range(48);
            if rng.chance(0.5) {
                let v = Line::from_words(&[id, step]);
                oram.write(id, v);
                model.insert(id, v);
            } else {
                assert_eq!(oram.read(id), model.get(&id).copied(), "block {id}");
            }
        }
    }

    #[test]
    fn absent_blocks_read_none_without_corruption() {
        let mut oram = PathOram::new(4, 3);
        oram.write(1, Line::splat(1));
        for id in 100..120 {
            assert_eq!(oram.read(id), None);
        }
        assert_eq!(oram.read(1), Some(Line::splat(1)));
    }

    #[test]
    fn stash_stays_bounded() {
        // With Z=4 and load ≤ leaves, Path ORAM's stash is O(log n) w.h.p.
        let mut oram = PathOram::new(7, 4); // 128 leaves
        let mut rng = SimRng::new(5);
        for step in 0..5_000u64 {
            let id = rng.gen_range(100);
            oram.write(id, Line::from_words(&[step]));
        }
        assert!(
            oram.max_stash() < 40,
            "stash grew to {} — eviction broken",
            oram.max_stash()
        );
    }

    #[test]
    fn bandwidth_amplification_matches_theory() {
        let mut oram = PathOram::new(6, 6);
        oram.write(1, Line::splat(1));
        let per_access = oram.blocks_moved();
        // One access = read + write of (levels+1) buckets of Z blocks.
        assert_eq!(per_access, 2 * 7 * Z as u64);
    }

    #[test]
    fn same_block_takes_fresh_paths() {
        // Re-randomized positions: repeated access to one block must not
        // repeatedly touch one leaf (that would leak the access pattern).
        let mut oram = PathOram::new(6, 7);
        oram.write(42, Line::splat(1));
        let mut leaves = std::collections::HashSet::new();
        for _ in 0..64 {
            leaves.insert(oram.position[&42]);
            oram.read(42);
        }
        assert!(leaves.len() > 16, "positions not re-randomized: {leaves:?}");
    }

    #[test]
    fn bucket_paths_are_consistent() {
        let oram = PathOram::new(3, 8);
        // Root is on every path.
        for leaf in 0..8 {
            assert_eq!(oram.bucket_on_path(leaf, 0), 0);
        }
        // Leaves are distinct buckets at the last level.
        let leaf_buckets: std::collections::HashSet<usize> =
            (0..8).map(|l| oram.bucket_on_path(l, 3)).collect();
        assert_eq!(leaf_buckets.len(), 8);
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = PathOram::new(5, 9);
        let mut b = PathOram::new(5, 9);
        for i in 0..100 {
            a.write(i, Line::splat(i as u8));
            b.write(i, Line::splat(i as u8));
        }
        for i in 0..100 {
            assert_eq!(a.read(i), b.read(i));
        }
    }
}
