//! Compiled sub-op schedules: one topological scheduling pass per
//! `(stack, request shape)`, replayed for every subsequent full submit.
//!
//! For a *full* submit — address and data both available at the submit
//! cycle — the interpreted scheduler ([`crate::engine::BmoEngine`]) walks
//! the dependency graph and asks the [`UnitPool`] where each sub-operation
//! may run. But the answer is the same every time as long as the units have
//! room: in first-fit window placement, a sub-operation whose aggregate
//! window charge fits starts exactly at its ready time, and its ready time
//! is pure DAG arithmetic over its predecessors (plus, in serialized modes,
//! the canonical-order prefix). So the whole schedule is a *template* of
//! per-node offsets relative to the submit cycle, compiled once per request
//! shape and replayed by offsetting a base cycle — no graph walk, no
//! placement search.
//!
//! The only per-replay work that remains is the validity probe: aggregate
//! the template's unit-cycle charges per window, ask the pool whether each
//! touched window still has room ([`UnitPool::window_fits`]), and commit
//! wholesale ([`UnitPool::charge_window`]) if so. When a window is
//! saturated the units are genuinely contended, first-fit placement would
//! legitimately differ from the template, and the engine falls back to the
//! interpreted scheduler for that job — which is why replay and
//! interpretation are cycle-identical by construction, not merely in
//! expectation (the differential property test in
//! `tests/compiled_differential.rs` holds them to it).
//!
//! Request shapes are keyed by the job's `dup` flag only: the graph, mode,
//! and unit count are fixed per engine, staged (partial) submits always
//! take the interpreted path, and `dup` is the one remaining bit that
//! changes which nodes exist.

use janus_sim::resource::UnitPool;
use janus_sim::time::Cycles;
use janus_trace::Category;

use crate::engine::{category_of, BmoMode, UNIT_II};
use crate::subop::{DepGraph, NodeId};

/// One sub-operation's slot in a compiled template. All offsets are
/// relative to the job's submit cycle.
#[derive(Clone, Copy, Debug)]
pub struct SlotTpl {
    /// The graph node this slot schedules.
    pub node: NodeId,
    /// Ready offset: dependency waits (and serialized-order waits) resolved.
    pub rel_ready: u64,
    /// Completion offset (`rel_ready + latency` — replay starts at ready).
    pub rel_end: u64,
    /// Service latency.
    pub latency: Cycles,
    /// Unit-cycles the slot charges to its ready window
    /// (`min(UNIT_II, latency)`, at least 1 — always within one window).
    pub charge: u64,
    /// Sub-operation name (trace span label).
    pub name: &'static str,
    /// Trace category of the owning BMO.
    pub cat: Category,
}

/// A compiled schedule: the flat slot array in topological order, plus the
/// shape's critical-path length.
#[derive(Clone, Debug)]
pub struct SchedTemplate {
    /// Slots in the engine's canonical topological order (skipped
    /// `skip_if_dup` nodes are absent for the duplicate shape).
    pub slots: Vec<SlotTpl>,
    /// Critical-path length of the shape: `max(rel_end)` (0 if every node
    /// is skipped).
    pub span: u64,
}

impl SchedTemplate {
    /// Compiles the schedule for one request shape by replaying the
    /// interpreted scheduler's ready computation symbolically (submit = 0,
    /// both inputs at 0, uncontended units).
    pub fn compile(graph: &DepGraph, topo: &[NodeId], mode: BmoMode, dup: bool) -> SchedTemplate {
        let mut end_rel: Vec<Option<u64>> = vec![None; graph.len()];
        let mut slots = Vec::with_capacity(topo.len());
        // Running max completion over earlier (non-skipped) canonical-order
        // nodes — the serialized modes' monolithic-ordering constraint.
        let mut serial_prefix = 0u64;
        for &n in topo {
            let op = graph.node(n);
            if dup && op.skip_if_dup {
                continue;
            }
            let mut ready = 0u64;
            for &p in graph.preds(n) {
                if dup && graph.node(p).skip_if_dup {
                    continue;
                }
                ready = ready.max(end_rel[p.0].expect("predecessors precede in topo order"));
            }
            if mode != BmoMode::Parallelized {
                ready = ready.max(serial_prefix);
            }
            let end = ready + op.latency.0;
            end_rel[n.0] = Some(end);
            serial_prefix = serial_prefix.max(end);
            slots.push(SlotTpl {
                node: n,
                rel_ready: ready,
                rel_end: end,
                latency: op.latency,
                charge: UNIT_II.min(op.latency).0.max(1),
                name: op.name,
                cat: category_of(op.bmo),
            });
        }
        let span = slots.iter().map(|s| s.rel_end).max().unwrap_or(0);
        SchedTemplate { slots, span }
    }

    /// Aggregates the template's per-window unit-cycle charges for a replay
    /// at `submit` into `windows` (a reused scratch buffer of
    /// `(window, charge)` pairs), then reports whether every touched window
    /// still fits in `pool`. On `true`, committing the same aggregates
    /// reproduces the interpreted schedule exactly.
    pub fn windows_fit(
        &self,
        submit: Cycles,
        pool: &UnitPool,
        windows: &mut Vec<(u64, u64)>,
    ) -> bool {
        if pool.is_unlimited() {
            return true;
        }
        windows.clear();
        for s in &self.slots {
            let w = (submit.0 + s.rel_ready) / UnitPool::WINDOW;
            match windows.iter_mut().find(|(wi, _)| *wi == w) {
                Some((_, c)) => *c += s.charge,
                None => windows.push((w, s.charge)),
            }
        }
        windows.iter().all(|&(w, c)| pool.window_fits(w, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::BmoLatencies;

    fn graph() -> DepGraph {
        DepGraph::standard(&BmoLatencies::paper())
    }

    #[test]
    fn parallelized_template_span_is_the_critical_path() {
        let g = graph();
        let topo = g.topo_order();
        let t = SchedTemplate::compile(&g, &topo, BmoMode::Parallelized, false);
        assert_eq!(Cycles(t.span), g.critical_path());
        assert_eq!(t.slots.len(), g.len());
    }

    #[test]
    fn serialized_template_span_is_the_serial_sum() {
        let g = graph();
        let topo = g.topo_order();
        let t = SchedTemplate::compile(&g, &topo, BmoMode::Serialized, false);
        assert_eq!(Cycles(t.span), g.serial_sum());
        // Monolithic ordering: each slot starts where the previous ended.
        for pair in t.slots.windows(2) {
            assert_eq!(pair[1].rel_ready, pair[0].rel_end);
        }
    }

    #[test]
    fn duplicate_shape_drops_skippable_nodes() {
        let g = graph();
        let topo = g.topo_order();
        let full = SchedTemplate::compile(&g, &topo, BmoMode::Parallelized, false);
        let dup = SchedTemplate::compile(&g, &topo, BmoMode::Parallelized, true);
        let skipped = g.node_ids().filter(|&n| g.node(n).skip_if_dup).count();
        assert!(skipped > 0, "standard graph has dup-cancelled nodes");
        assert_eq!(dup.slots.len() + skipped, full.slots.len());
    }

    #[test]
    fn charges_fit_a_single_window() {
        let g = graph();
        let topo = g.topo_order();
        let t = SchedTemplate::compile(&g, &topo, BmoMode::Parallelized, false);
        for s in &t.slots {
            assert!(s.charge >= 1 && s.charge <= UNIT_II.0);
            assert!(s.charge <= UnitPool::WINDOW);
        }
    }

    #[test]
    fn window_fit_probe_respects_saturation() {
        let g = graph();
        let topo = g.topo_order();
        let t = SchedTemplate::compile(&g, &topo, BmoMode::Parallelized, false);
        let mut scratch = Vec::new();
        let mut pool = UnitPool::new(4);
        assert!(t.windows_fit(Cycles(0), &pool, &mut scratch));
        // Saturate window 0 (4 units × 64 = 256 unit-cycles).
        for _ in 0..4 {
            pool.acquire(Cycles(0), Cycles(64));
        }
        assert!(!t.windows_fit(Cycles(0), &pool, &mut scratch));
        assert!(t.windows_fit(Cycles(0), &UnitPool::new(UnitPool::UNLIMITED), &mut scratch));
    }
}
