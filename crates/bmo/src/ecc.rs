//! SECDED error correction (Table 1, "Durability / Error Correction").
//!
//! A Hamming(72,64) code per 8-byte word: 7 Hamming check bits correct any
//! single-bit error and an overall parity bit detects (but cannot correct)
//! double-bit errors — the standard memory-ECC organization, costing 8
//! check bits per 64 data bits (12.5 %), with sub-nanosecond hardware
//! latency (Table 1 quotes 0.4–3 ns).
//!
//! NVM cells wear out and stick; per-word SECDED keeps single stuck bits
//! transparent. The module is a self-contained functional substrate: the
//! timing model charges the (negligible) Table-1 latency; these routines
//! provide the encode/decode/correct behaviour and its tests.

use janus_nvm::line::{Line, LINE_BYTES};

/// The 8 check bits protecting one 64-bit word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Check(pub u8);

/// Decode outcome for one word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decoded {
    /// No error detected.
    Clean(u64),
    /// A single-bit error was corrected (bit index in the 72-bit codeword
    /// space; data errors report the corrected word).
    Corrected(u64),
    /// An uncorrectable (≥2-bit) error was detected.
    Uncorrectable,
}

impl Decoded {
    /// The recovered word, if any.
    pub fn value(self) -> Option<u64> {
        match self {
            Decoded::Clean(w) | Decoded::Corrected(w) => Some(w),
            Decoded::Uncorrectable => None,
        }
    }
}

/// Positions: codeword bits 1..=71 (1-indexed, classic Hamming layout);
/// power-of-two positions hold check bits, the rest data bits in order.
fn data_positions() -> impl Iterator<Item = u32> {
    (1u32..=71).filter(|p| !p.is_power_of_two())
}

fn spread(word: u64) -> u128 {
    // Scatter the 64 data bits into their codeword positions.
    let mut cw: u128 = 0;
    for (k, p) in data_positions().enumerate() {
        if word >> k & 1 == 1 {
            cw |= 1u128 << p;
        }
    }
    cw
}

fn gather(cw: u128) -> u64 {
    let mut word = 0u64;
    for (k, p) in data_positions().enumerate() {
        if cw >> p & 1 == 1 {
            word |= 1u64 << k;
        }
    }
    word
}

fn hamming_bits(cw: u128) -> u8 {
    // Check bit i covers positions with bit i set.
    let mut check = 0u8;
    for i in 0..7u32 {
        let mut parity = 0u32;
        for p in 1u32..=71 {
            if p >> i & 1 == 1 && cw >> p & 1 == 1 {
                parity ^= 1;
            }
        }
        check |= (parity as u8) << i;
    }
    check
}

/// Encodes a word: returns its SECDED check byte (7 Hamming bits + overall
/// parity in bit 7).
pub fn encode(word: u64) -> Check {
    let cw = spread(word);
    let ham = hamming_bits(cw);
    // Overall parity covers the 64 data bits and the 7 hamming bits.
    let overall = (word.count_ones() + ham.count_ones()) as u8 & 1;
    Check(ham | (overall << 7))
}

/// Decodes a possibly corrupted `(word, check)` pair.
pub fn decode(word: u64, check: Check) -> Decoded {
    let mut cw = spread(word);
    // Install the stored hamming bits at their positions (1,2,4,…,64).
    let stored_ham = check.0 & 0x7F;
    for i in 0..7u32 {
        if stored_ham >> i & 1 == 1 {
            cw |= 1u128 << (1u32 << i);
        }
    }
    // Syndrome: recompute parities over the full codeword.
    let mut syndrome = 0u32;
    for i in 0..7u32 {
        let mut parity = 0u32;
        for p in 1u32..=71 {
            if p >> i & 1 == 1 && cw >> p & 1 == 1 {
                parity ^= 1;
            }
        }
        if parity == 1 {
            syndrome |= 1 << i;
        }
    }
    let overall_stored = check.0 >> 7;
    let overall_actual = (word.count_ones() + stored_ham.count_ones()) as u8 & 1;
    let overall_bad = overall_stored != overall_actual;

    match (syndrome, overall_bad) {
        (0, false) => Decoded::Clean(word),
        (0, true) => {
            // The overall parity bit itself flipped; data intact.
            Decoded::Corrected(word)
        }
        (s, true) if (1..=71).contains(&s) => {
            // Single-bit error at position s: flip and re-gather.
            let fixed = cw ^ (1u128 << s);
            Decoded::Corrected(gather(fixed))
        }
        // Syndrome non-zero but overall parity consistent → double error.
        _ => Decoded::Uncorrectable,
    }
}

/// Check bytes for a whole 64-byte line (one per u64 word).
pub fn encode_line(line: &Line) -> [Check; 8] {
    let mut out = [Check(0); 8];
    for (k, o) in out.iter_mut().enumerate() {
        *o = encode(line.read_u64(k * 8));
    }
    out
}

/// Decodes a line; returns the corrected line and the number of corrected
/// words, or `None` if any word was uncorrectable.
pub fn decode_line(line: &Line, checks: &[Check; 8]) -> Option<(Line, usize)> {
    let mut out = Line::zero();
    let mut corrected = 0;
    for (k, check) in checks.iter().enumerate().take(LINE_BYTES / 8) {
        match decode(line.read_u64(k * 8), *check) {
            Decoded::Clean(w) => out.write_u64(k * 8, w),
            Decoded::Corrected(w) => {
                corrected += 1;
                out.write_u64(k * 8, w);
            }
            Decoded::Uncorrectable => return None,
        }
    }
    Some((out, corrected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_sim::rng::SimRng;

    #[test]
    fn clean_words_decode_clean() {
        for w in [0u64, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            let c = encode(w);
            assert_eq!(decode(w, c), Decoded::Clean(w));
        }
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        let word = 0xA5A5_5A5A_0F0F_F0F0u64;
        let check = encode(word);
        for bit in 0..64 {
            let corrupted = word ^ (1u64 << bit);
            match decode(corrupted, check) {
                Decoded::Corrected(w) => assert_eq!(w, word, "bit {bit}"),
                other => panic!("bit {bit}: {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_check_bit_flip_is_corrected() {
        let word = 0x0123_4567_89AB_CDEFu64;
        let check = encode(word);
        for bit in 0..8 {
            let corrupted = Check(check.0 ^ (1 << bit));
            match decode(word, corrupted) {
                Decoded::Corrected(w) => assert_eq!(w, word, "check bit {bit}"),
                other => panic!("check bit {bit}: {other:?}"),
            }
        }
    }

    #[test]
    fn double_bit_errors_are_detected_not_miscorrected() {
        let mut rng = SimRng::new(7);
        let mut detected = 0;
        let trials = 500;
        for _ in 0..trials {
            let word = rng.next_u64();
            let check = encode(word);
            let b1 = rng.gen_range(64);
            let mut b2 = rng.gen_range(64);
            while b2 == b1 {
                b2 = rng.gen_range(64);
            }
            let corrupted = word ^ (1 << b1) ^ (1 << b2);
            match decode(corrupted, check) {
                Decoded::Uncorrectable => detected += 1,
                Decoded::Corrected(w) => {
                    assert_ne!(w, corrupted, "double error silently accepted");
                    panic!("double error mis-corrected");
                }
                Decoded::Clean(_) => panic!("double error undetected"),
            }
        }
        assert_eq!(detected, trials);
    }

    #[test]
    fn random_round_trip_fuzz() {
        let mut rng = SimRng::new(13);
        for _ in 0..2_000 {
            let w = rng.next_u64();
            let c = encode(w);
            // flip one random of the 72 bits
            let bit = rng.gen_range(72);
            let (cw, cc) = if bit < 64 {
                (w ^ (1u64 << bit), c)
            } else {
                (w, Check(c.0 ^ (1 << (bit - 64))))
            };
            assert_eq!(decode(cw, cc).value(), Some(w));
        }
    }

    #[test]
    fn line_level_encode_decode() {
        let line = Line::from_words(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let checks = encode_line(&line);
        // Clean.
        assert_eq!(decode_line(&line, &checks), Some((line, 0)));
        // One flipped bit in word 3.
        let mut bad = line;
        bad.write_u64(24, line.read_u64(24) ^ (1 << 17));
        assert_eq!(decode_line(&bad, &checks), Some((line, 1)));
        // Two flipped bits in one word: uncorrectable.
        let mut worse = line;
        worse.write_u64(24, line.read_u64(24) ^ 0b11);
        assert_eq!(decode_line(&worse, &checks), None);
    }

    #[test]
    fn storage_overhead_is_one_byte_per_word() {
        // 8 check bytes per 64-byte line = 12.5% — the standard ECC DIMM
        // organization.
        assert_eq!(std::mem::size_of::<[Check; 8]>(), 8);
    }
}
