//! Start-Gap wear-leveling (Table 1, "Durability / Wear-leveling").
//!
//! Qureshi et al.'s Start-Gap (MICRO 2009, the paper's citation \[70\]):
//! a region of `n` lines is stored in `n + 1` physical frames; one frame is
//! the *gap*. Every `GAP_MOVE_INTERVAL` writes, the line just above the gap
//! moves into it and the gap shifts up by one (wrapping). After `n + 1`
//! gap movements every line has shifted by one frame, so hot logical lines
//! migrate across the whole physical region over time, evening out cell
//! wear at the cost of one extra line copy per interval and ~1 ns of
//! remapping arithmetic per access (two registers: `start` and `gap`).
//!
//! The mapping is pure arithmetic — exactly what makes it attractive in
//! hardware:
//!
//! ```text
//! frame(l) = (l + start) mod (n+1),  then +1 if frame >= gap
//! ```

/// A Start-Gap remapper over `n` logical lines (`n + 1` physical frames).
///
/// # Example
///
/// ```
/// use janus_bmo::wear::StartGap;
/// let mut sg = StartGap::new(8, 4);
/// let before = sg.frame_of(3);
/// for _ in 0..8 * 4 {
///     sg.record_write(3); // hot line
/// }
/// // After enough gap movements the hot line lives somewhere else.
/// assert_ne!(sg.frame_of(3), before);
/// ```
#[derive(Clone, Debug)]
pub struct StartGap {
    n: u64,
    /// Rotation offset; increments once per full gap cycle.
    start: u64,
    /// Current gap frame.
    gap: u64,
    /// Writes since the last gap movement.
    since_move: u64,
    /// Writes between gap movements (the paper uses 100).
    interval: u64,
    /// Total gap movements (each costs one line copy).
    moves: u64,
}

impl StartGap {
    /// Creates a remapper for `n` lines, moving the gap every `interval`
    /// writes.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `interval` is zero.
    pub fn new(n: u64, interval: u64) -> Self {
        assert!(n > 0 && interval > 0, "degenerate start-gap parameters");
        StartGap {
            n,
            start: 0,
            gap: n, // gap starts at the spare frame
            since_move: 0,
            interval,
            moves: 0,
        }
    }

    /// Physical frame currently holding logical line `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= n`.
    pub fn frame_of(&self, l: u64) -> u64 {
        assert!(l < self.n, "logical line out of range");
        let f = (l + self.start) % self.n;
        if f >= self.gap {
            f + 1
        } else {
            f
        }
    }

    /// Records one write to logical line `l`; returns `Some((from, to))`
    /// when this write triggers a gap movement (the hardware copies frame
    /// `from` into frame `to`).
    pub fn record_write(&mut self, l: u64) -> Option<(u64, u64)> {
        assert!(l < self.n, "logical line out of range");
        self.since_move += 1;
        if self.since_move < self.interval {
            return None;
        }
        self.since_move = 0;
        self.moves += 1;
        if self.gap == 0 {
            // Wrap: the line circularly below frame 0 is frame n; copying
            // it down completes one full rotation of the region.
            self.gap = self.n;
            self.start = (self.start + 1) % self.n;
            Some((self.n, 0))
        } else {
            let (from, to) = (self.gap - 1, self.gap);
            self.gap -= 1;
            Some((from, to))
        }
    }

    /// Total gap movements so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Serializes the remapper's registers (n, start, gap, since_move,
    /// interval, moves) for persistence; [`StartGap::restore`] inverts it.
    pub fn save(&self) -> [u64; 6] {
        [
            self.n,
            self.start,
            self.gap,
            self.since_move,
            self.interval,
            self.moves,
        ]
    }

    /// Rebuilds a remapper from saved registers (crash recovery).
    ///
    /// # Panics
    ///
    /// Panics on degenerate registers (`n` or `interval` zero).
    pub fn restore(regs: [u64; 6]) -> Self {
        let [n, start, gap, since_move, interval, moves] = regs;
        assert!(n > 0 && interval > 0, "degenerate start-gap registers");
        assert!(start < n && gap <= n, "inconsistent start-gap registers");
        StartGap {
            n,
            start,
            gap,
            since_move,
            interval,
            moves,
        }
    }

    /// Write amplification from gap copies: extra writes / logical writes.
    pub fn write_amplification(&self, logical_writes: u64) -> f64 {
        if logical_writes == 0 {
            0.0
        } else {
            self.moves as f64 / logical_writes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// The mapping must always be a bijection of lines onto frames minus
    /// the gap.
    fn assert_bijection(sg: &StartGap, n: u64) {
        let frames: HashSet<u64> = (0..n).map(|l| sg.frame_of(l)).collect();
        assert_eq!(frames.len() as u64, n, "mapping collided");
        for f in &frames {
            assert!(*f <= n, "frame out of range");
        }
        assert!(!frames.contains(&sg.gap), "a line mapped onto the gap");
    }

    #[test]
    fn initial_mapping_is_identity() {
        let sg = StartGap::new(8, 4);
        for l in 0..8 {
            assert_eq!(sg.frame_of(l), l);
        }
    }

    #[test]
    fn mapping_stays_bijective_forever() {
        let mut sg = StartGap::new(8, 1); // move on every write
        for step in 0..200 {
            sg.record_write(step % 8);
            assert_bijection(&sg, 8);
        }
    }

    #[test]
    fn gap_moves_every_interval() {
        let mut sg = StartGap::new(16, 4);
        let mut moves = 0;
        for i in 0..40 {
            if sg.record_write(i % 16).is_some() {
                moves += 1;
            }
        }
        assert_eq!(moves, 10);
        assert_eq!(sg.moves(), 10);
    }

    #[test]
    fn hot_line_migrates_across_frames() {
        let mut sg = StartGap::new(8, 1);
        let mut seen = HashSet::new();
        for _ in 0..200 {
            seen.insert(sg.frame_of(0));
            sg.record_write(0);
        }
        // Over time, line 0 should have occupied most frames.
        assert!(seen.len() >= 8, "line 0 visited only {:?}", seen);
    }

    #[test]
    fn gap_copy_endpoints_are_adjacent() {
        let mut sg = StartGap::new(8, 1);
        for i in 0..50 {
            if let Some((from, to)) = sg.record_write(i % 8) {
                // The copy source is one frame below the old gap (wrapping).
                assert_eq!(from, if to == 0 { 8 } else { to - 1 });
            }
        }
    }

    #[test]
    fn write_amplification_matches_interval() {
        let mut sg = StartGap::new(64, 100);
        for i in 0..10_000u64 {
            sg.record_write(i % 64);
        }
        let wa = sg.write_amplification(10_000);
        assert!((wa - 0.01).abs() < 0.001, "wa = {wa}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        StartGap::new(4, 1).frame_of(4);
    }

    #[test]
    fn save_restore_round_trips() {
        let mut sg = StartGap::new(16, 3);
        for i in 0..37 {
            sg.record_write(i % 16);
        }
        let r = StartGap::restore(sg.save());
        for l in 0..16 {
            assert_eq!(r.frame_of(l), sg.frame_of(l));
        }
        assert_eq!(r.moves(), sg.moves());
        // Restored state continues identically.
        let mut a = sg.clone();
        let mut b = StartGap::restore(sg.save());
        for i in 0..50 {
            assert_eq!(a.record_write(i % 16), b.record_write(i % 16));
        }
    }
}
