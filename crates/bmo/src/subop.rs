//! Sub-operation dependency graphs (§3.1, Figure 2 and Figure 6).
//!
//! Each BMO decomposes into sub-operations connected by three kinds of
//! dependency edges:
//!
//! * **intra-operation** — between sub-operations of the same BMO (E1→E2);
//! * **inter-operation** — across BMOs (D2→E3: duplicate writes are not
//!   encrypted; E1→D4: the address mapping co-locates with the counter;
//!   E1→I1 and D2→I1: the Merkle tree is built over the co-located
//!   counter/remap metadata);
//! * **external** — from a write's address or data to the sub-operations
//!   that consume them.
//!
//! The two analyses of the paper are implemented directly on the graph:
//! [`DepGraph::can_parallel`] (two sub-operation sets may execute in
//! parallel iff no dependency path connects them, §3.1) and
//! [`DepGraph::external_class`] (a sub-operation is address-dependent,
//! data-dependent, or both, according to the external inputs reachable
//! through its ancestors — the "merge nodes without external dependency
//! into their preceding nodes" step of Figure 2b).

use janus_sim::time::Cycles;

use crate::latency::BmoLatencies;

/// Which BMO a sub-operation belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BmoKind {
    /// Counter-mode encryption (E1–E4).
    Encryption,
    /// Bonsai-Merkle-Tree integrity verification (I1–I3).
    Integrity,
    /// Fingerprint deduplication (D1–D4).
    Dedup,
    /// Optional extension: inline compression (C1).
    Compression,
    /// Optional extension: wear-leveling remap (W1).
    WearLeveling,
    /// Optional extension: SECDED check-byte generation (EC1).
    Ecc,
    /// Optional extension: oblivious frame relocation (O1).
    Oram,
}

/// Index of a sub-operation node within its graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Dependency edge kind (used for reporting/validation; scheduling treats
/// intra and inter edges identically).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Between sub-operations of one BMO.
    Intra,
    /// Across BMOs.
    Inter,
}

/// External-input dependency class of a sub-operation (§3.1): which of the
/// write's external inputs it (transitively) requires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExternalClass {
    /// Only the write's address (pre-executable via `PRE_ADDR`).
    Addr,
    /// Only the write's data (pre-executable via `PRE_DATA`).
    Data,
    /// Both address and data (pre-executable once both are known).
    Both,
    /// Neither — the node has no external requirement of its own nor through
    /// ancestors (does not occur in the standard graph after merging).
    None,
}

/// Why an edge insertion was rejected (the checked counterpart of the
/// panicking [`DepGraph::add_edge`] — consumed by the structural linter).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EdgeError {
    /// `from == to`.
    SelfEdge(NodeId),
    /// The edge would close a dependency cycle.
    Cycle(NodeId, NodeId),
    /// The exact edge already exists.
    Duplicate(NodeId, NodeId),
}

impl std::fmt::Display for EdgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeError::SelfEdge(n) => write!(f, "self edge on node {}", n.0),
            EdgeError::Cycle(a, b) => {
                write!(f, "edge {} -> {} would create a cycle", a.0, b.0)
            }
            EdgeError::Duplicate(a, b) => write!(f, "duplicate edge {} -> {}", a.0, b.0),
        }
    }
}

impl std::error::Error for EdgeError {}

/// A single sub-operation.
#[derive(Clone, Debug)]
pub struct SubOp {
    /// Short name from the paper ("E1", "D2", …).
    pub name: &'static str,
    /// Owning BMO.
    pub bmo: BmoKind,
    /// Execution latency on a BMO unit.
    pub latency: Cycles,
    /// Direct external dependency on the write's address.
    pub needs_addr: bool,
    /// Direct external dependency on the write's data.
    pub needs_data: bool,
    /// Whether this node is skipped when the write is a duplicate (the
    /// memory controller "cancels duplicated writes", so E3/E4 never run).
    pub skip_if_dup: bool,
}

/// The dependency graph of one system's BMO set.
#[derive(Clone, Debug)]
pub struct DepGraph {
    nodes: Vec<SubOp>,
    edges: Vec<(NodeId, NodeId, EdgeKind)>,
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<NodeId>>,
}

impl DepGraph {
    /// Builds an empty graph.
    pub fn new() -> Self {
        DepGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            preds: Vec::new(),
            succs: Vec::new(),
        }
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, op: SubOp) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(op);
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        id
    }

    /// Adds a dependency edge `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if the edge would create a cycle or duplicates an existing
    /// edge.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        match self.try_add_edge(from, to, kind) {
            Ok(()) => {}
            Err(EdgeError::SelfEdge(_)) => {
                panic!("self edge on {}", self.nodes[from.0].name)
            }
            Err(EdgeError::Cycle(..)) => panic!(
                "edge {} -> {} would create a cycle",
                self.nodes[from.0].name, self.nodes[to.0].name
            ),
            Err(EdgeError::Duplicate(..)) => panic!(
                "duplicate edge {} -> {}",
                self.nodes[from.0].name, self.nodes[to.0].name
            ),
        }
    }

    /// Checked edge insertion: rejects self edges, cycles, and duplicates
    /// instead of panicking, leaving the graph untouched on error.
    pub fn try_add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        kind: EdgeKind,
    ) -> Result<(), EdgeError> {
        if from == to {
            return Err(EdgeError::SelfEdge(from));
        }
        if self.has_path(to, from) {
            return Err(EdgeError::Cycle(from, to));
        }
        if self.preds[to.0].contains(&from) {
            return Err(EdgeError::Duplicate(from, to));
        }
        self.edges.push((from, to, kind));
        self.preds[to.0].push(from);
        self.succs[from.0].push(to);
        Ok(())
    }

    /// Number of sub-operations.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The sub-operation for `id`.
    pub fn node(&self, id: NodeId) -> &SubOp {
        &self.nodes[id.0]
    }

    /// All node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Looks up a node by its paper name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Direct predecessors of `id`.
    pub fn preds(&self, id: NodeId) -> &[NodeId] {
        &self.preds[id.0]
    }

    /// Direct successors of `id`.
    pub fn succs(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.0]
    }

    /// All edges.
    pub fn edges(&self) -> &[(NodeId, NodeId, EdgeKind)] {
        &self.edges
    }

    /// Whether a dependency path `from ⤳ to` exists.
    pub fn has_path(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = vec![false; self.nodes.len()];
        while let Some(n) = stack.pop() {
            for &s in &self.succs[n.0] {
                if s == to {
                    return true;
                }
                if !seen[s.0] {
                    seen[s.0] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Edges that are transitively redundant: `(from, to)` such that a
    /// dependency path `from ⤳ to` exists even without the direct edge.
    /// Redundant edges never change the schedule (the path already orders
    /// the endpoints) but cost composition and traversal work — the
    /// structural linter reports them.
    pub fn redundant_edges(&self) -> Vec<(NodeId, NodeId, EdgeKind)> {
        self.edges
            .iter()
            .filter(|&&(from, to, _)| {
                // Path from → to using at least one intermediate node.
                self.succs[from.0]
                    .iter()
                    .any(|&s| s != to && self.has_path(s, to))
            })
            .copied()
            .collect()
    }

    /// The paper's parallelization rule (§3.1): `S1 ∥ S2` iff for all
    /// `Op1 ∈ S1, Op2 ∈ S2` there is no path in either direction.
    pub fn can_parallel(&self, s1: &[NodeId], s2: &[NodeId]) -> bool {
        s1.iter().all(|&a| {
            s2.iter()
                .all(|&b| !self.has_path(a, b) && !self.has_path(b, a))
        })
    }

    /// External-input class of a node: the union of direct external
    /// dependencies over the node and all of its ancestors.
    pub fn external_class(&self, id: NodeId) -> ExternalClass {
        let mut needs_addr = false;
        let mut needs_data = false;
        let mut stack = vec![id];
        let mut seen = vec![false; self.nodes.len()];
        seen[id.0] = true;
        while let Some(n) = stack.pop() {
            needs_addr |= self.nodes[n.0].needs_addr;
            needs_data |= self.nodes[n.0].needs_data;
            for &p in &self.preds[n.0] {
                if !seen[p.0] {
                    seen[p.0] = true;
                    stack.push(p);
                }
            }
        }
        match (needs_addr, needs_data) {
            (true, true) => ExternalClass::Both,
            (true, false) => ExternalClass::Addr,
            (false, true) => ExternalClass::Data,
            (false, false) => ExternalClass::None,
        }
    }

    /// Topological order (insertion order refined by dependencies).
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut indeg: Vec<usize> = self.preds.iter().map(|p| p.len()).collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut ready: Vec<NodeId> = self.node_ids().filter(|n| indeg[n.0] == 0).collect();
        while let Some(n) = ready.pop() {
            order.push(n);
            for &s in &self.succs[n.0] {
                indeg[s.0] -= 1;
                if indeg[s.0] == 0 {
                    ready.push(s);
                }
            }
        }
        debug_assert_eq!(order.len(), self.nodes.len(), "graph has a cycle");
        order
    }

    /// Length of the longest dependency path assuming unlimited units and
    /// all external inputs available at time zero — the parallelized lower
    /// bound on BMO latency.
    pub fn critical_path(&self) -> Cycles {
        let mut finish = vec![Cycles::ZERO; self.nodes.len()];
        for n in self.topo_order() {
            let start = self.preds[n.0]
                .iter()
                .map(|p| finish[p.0])
                .max()
                .unwrap_or(Cycles::ZERO);
            finish[n.0] = start + self.nodes[n.0].latency;
        }
        finish.into_iter().max().unwrap_or(Cycles::ZERO)
    }

    /// Sum of all node latencies — the serialized execution time.
    pub fn serial_sum(&self) -> Cycles {
        self.nodes.iter().map(|n| n.latency).sum()
    }

    /// Builds the standard three-BMO graph of Figure 6 (encryption E1–E4,
    /// integrity I1–I3, deduplication D1–D4) with the given latencies.
    ///
    /// Equivalent to `BmoStack::paper().graph(lat)` — the fragments and
    /// inter-BMO edges live with each BMO in the [`crate::stack`] registry.
    pub fn standard(lat: &BmoLatencies) -> DepGraph {
        crate::stack::BmoStack::paper().graph(lat)
    }

    /// The extended graph for the ablation study: the standard three BMOs
    /// plus inline compression (C1, data-dependent, before encryption) and
    /// wear-leveling (W1, address-dependent, before the mapping update).
    ///
    /// Equivalent to `BmoStack::extended().graph(lat)`.
    pub fn extended(lat: &BmoLatencies) -> DepGraph {
        crate::stack::BmoStack::extended().graph(lat)
    }
}

impl Default for DepGraph {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> DepGraph {
        DepGraph::standard(&BmoLatencies::paper())
    }

    fn ids(g: &DepGraph, names: &[&str]) -> Vec<NodeId> {
        names
            .iter()
            .map(|n| g.node_by_name(n).expect("known node"))
            .collect()
    }

    #[test]
    fn standard_graph_shape() {
        let g = g();
        assert_eq!(g.len(), 11);
        assert_eq!(g.edges().len(), 12);
    }

    #[test]
    fn figure2_parallel_sets() {
        // §3.1: "S_{E1-2} and S_{D1-3} are independent, and S_{E3} and
        // S_{D4} are independent."
        let g = g();
        assert!(g.can_parallel(&ids(&g, &["E1", "E2"]), &ids(&g, &["D1", "D2"])));
        assert!(g.can_parallel(&ids(&g, &["E3"]), &ids(&g, &["D4"])));
        // But E3 depends on D2, so {E3} ∦ {D1,D2}.
        assert!(!g.can_parallel(&ids(&g, &["E3"]), &ids(&g, &["D1", "D2"])));
    }

    #[test]
    fn figure6_parallel_sets() {
        // §4.2: "three sets of sub-operations E3-E4, I1-I3 and D3-D4 can
        // execute in parallel".
        let g = g();
        let e34 = ids(&g, &["E3", "E4"]);
        let i = ids(&g, &["I1", "I2", "I3"]);
        let d34 = ids(&g, &["D3", "D4"]);
        assert!(g.can_parallel(&e34, &i));
        assert!(g.can_parallel(&e34, &d34));
        assert!(g.can_parallel(&i, &d34));
    }

    #[test]
    fn external_classes_match_figure6() {
        // §4.2: "E1-E2 are address-dependent, D1-D2 are data-dependent, and
        // the rest are both".
        let g = g();
        for name in ["E1", "E2"] {
            assert_eq!(
                g.external_class(g.node_by_name(name).unwrap()),
                ExternalClass::Addr,
                "{name}"
            );
        }
        for name in ["D1", "D2"] {
            assert_eq!(
                g.external_class(g.node_by_name(name).unwrap()),
                ExternalClass::Data,
                "{name}"
            );
        }
        for name in ["E3", "E4", "I1", "I2", "I3", "D3", "D4"] {
            assert_eq!(
                g.external_class(g.node_by_name(name).unwrap()),
                ExternalClass::Both,
                "{name}"
            );
        }
    }

    #[test]
    fn critical_path_shorter_than_serial_sum() {
        let g = g();
        assert!(g.critical_path() < g.serial_sum());
        // Serialized total matches the latency model's arithmetic.
        assert_eq!(g.serial_sum(), BmoLatencies::paper().serialized_total());
    }

    #[test]
    fn critical_path_value() {
        // Longest path: D1 → D2 → I1 → I2 → I3
        // = 1284 + 40 + 160 + 1120 + 160 = 2764 cycles (691 ns).
        let g = g();
        assert_eq!(g.critical_path(), Cycles(2764));
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = g();
        let order = g.topo_order();
        assert_eq!(order.len(), g.len());
        let pos = |id: NodeId| order.iter().position(|&n| n == id).unwrap();
        for &(from, to, _) in g.edges() {
            assert!(pos(from) < pos(to));
        }
    }

    #[test]
    #[should_panic(expected = "would create a cycle")]
    fn cycle_detection() {
        let mut g = g();
        let e1 = g.node_by_name("E1").unwrap();
        let e3 = g.node_by_name("E3").unwrap();
        g.add_edge(e3, e1, EdgeKind::Inter);
    }

    #[test]
    fn extended_graph_classes() {
        let g = DepGraph::extended(&BmoLatencies::paper());
        assert_eq!(g.len(), 13);
        let c1 = g.node_by_name("C1").unwrap();
        let w1 = g.node_by_name("W1").unwrap();
        assert_eq!(g.external_class(c1), ExternalClass::Data);
        assert_eq!(g.external_class(w1), ExternalClass::Addr);
        // E3 now also waits on compression.
        let e3 = g.node_by_name("E3").unwrap();
        assert!(g.has_path(c1, e3));
    }

    #[test]
    fn path_queries() {
        let g = g();
        let d1 = g.node_by_name("D1").unwrap();
        let i3 = g.node_by_name("I3").unwrap();
        assert!(g.has_path(d1, i3));
        assert!(!g.has_path(i3, d1));
        assert!(g.has_path(d1, d1), "trivial self path");
    }

    #[test]
    fn dup_skippable_nodes() {
        let g = g();
        let skip: Vec<&str> = g
            .node_ids()
            .filter(|&n| g.node(n).skip_if_dup)
            .map(|n| g.node(n).name)
            .collect();
        assert_eq!(skip, vec!["E3", "E4"]);
    }
}
