//! Bonsai-Merkle-Tree integrity verification (sparse, SHA-1, arity 8).
//!
//! "The leaf nodes of the tree are counters and the intermediate nodes are
//! hashes of their child nodes. Therefore, the root hash is essentially the
//! hash of all leaf nodes. Keeping the root hash in a secured non-volatile
//! register ensures the integrity of the entire memory." (§4.2)
//!
//! The tree covers the co-located counter/remap metadata region. Since that
//! region is almost entirely zero-initialized, the tree is stored sparsely:
//! only nodes that differ from the "all-descendants-zero" default are
//! materialized, with per-level default hashes precomputed. This makes a
//! 2²⁴-leaf tree practical while remaining bit-for-bit well defined, so the
//! root can be recomputed from persistent metadata during crash recovery and
//! compared against the secure register.

use std::collections::HashMap;

use janus_crypto::sha1::{sha1, sha1_concat};
use janus_nvm::line::Line;

/// Fan-out of every internal node.
pub const ARITY: usize = 8;

/// A 160-bit SHA-1 node hash.
pub type NodeHash = [u8; 20];

/// The sparse Merkle tree.
///
/// Level 0 holds leaf hashes (one per metadata line); level `height` is the
/// root.
///
/// # Example
///
/// ```
/// use janus_bmo::integrity::MerkleTree;
/// use janus_nvm::line::Line;
///
/// let mut t = MerkleTree::new(8);
/// let empty_root = t.root();
/// t.update_leaf(42, &Line::splat(9));
/// assert_ne!(t.root(), empty_root);
/// t.update_leaf(42, &Line::zero());
/// assert_eq!(t.root(), empty_root, "zeroing restores the default root");
/// ```
#[derive(Clone, Debug)]
pub struct MerkleTree {
    height: u32,
    /// `(level, index) → hash` for nodes differing from the default.
    nodes: HashMap<(u32, u64), NodeHash>,
    /// `default[l]` = hash of a level-`l` node whose descendants are all
    /// zero lines.
    default: Vec<NodeHash>,
    updates: u64,
}

impl MerkleTree {
    /// Creates an empty tree of the given height (levels of hashing above
    /// the leaves; capacity = `ARITY^height` leaves).
    ///
    /// # Panics
    ///
    /// Panics if `height` is 0 or large enough to overflow leaf indexing.
    pub fn new(height: u32) -> Self {
        assert!((1..=20).contains(&height), "unreasonable tree height");
        let mut default = Vec::with_capacity(height as usize + 1);
        default.push(sha1(Line::zero().as_bytes()));
        for l in 0..height as usize {
            let child = default[l];
            let concat: Vec<u8> = (0..ARITY).flat_map(|_| child).collect();
            default.push(sha1(&concat));
        }
        MerkleTree {
            height,
            nodes: HashMap::new(),
            default,
            updates: 0,
        }
    }

    /// Number of leaves the tree covers.
    pub fn capacity(&self) -> u64 {
        (ARITY as u64).pow(self.height)
    }

    /// Height (hash levels above the leaves).
    pub fn height(&self) -> u32 {
        self.height
    }

    fn node(&self, level: u32, index: u64) -> NodeHash {
        self.nodes
            .get(&(level, index))
            .copied()
            .unwrap_or(self.default[level as usize])
    }

    fn set_node(&mut self, level: u32, index: u64, hash: NodeHash) {
        if hash == self.default[level as usize] {
            self.nodes.remove(&(level, index));
        } else {
            self.nodes.insert((level, index), hash);
        }
    }

    /// Re-hashes leaf `index` from its new line content and updates the path
    /// to the root (sub-operations I1–I3). Returns the new root.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the tree capacity.
    pub fn update_leaf(&mut self, index: u64, content: &Line) -> NodeHash {
        assert!(index < self.capacity(), "leaf index out of range");
        self.updates += 1;
        self.set_node(0, index, sha1(content.as_bytes()));
        let mut idx = index;
        for level in 0..self.height {
            idx /= ARITY as u64;
            let first_child = idx * ARITY as u64;
            let parts: Vec<NodeHash> = (0..ARITY as u64)
                .map(|i| self.node(level, first_child + i))
                .collect();
            let refs: Vec<&[u8]> = parts.iter().map(|h| h.as_slice()).collect();
            self.set_node(level + 1, idx, sha1_concat(&refs));
        }
        self.root()
    }

    /// The current root hash.
    pub fn root(&self) -> NodeHash {
        self.node(self.height, 0)
    }

    /// Verifies that leaf `index` currently hashes `content` and that its
    /// path is consistent up to the root.
    pub fn verify_leaf(&self, index: u64, content: &Line) -> bool {
        if self.node(0, index) != sha1(content.as_bytes()) {
            return false;
        }
        // Recompute the path bottom-up from stored children.
        let mut idx = index;
        for level in 0..self.height {
            idx /= ARITY as u64;
            let first_child = idx * ARITY as u64;
            let parts: Vec<NodeHash> = (0..ARITY as u64)
                .map(|i| self.node(level, first_child + i))
                .collect();
            let refs: Vec<&[u8]> = parts.iter().map(|h| h.as_slice()).collect();
            if sha1_concat(&refs) != self.node(level + 1, idx) {
                return false;
            }
        }
        true
    }

    /// Builds a tree from an iterator of `(leaf_index, line)` pairs — the
    /// crash-recovery path that recomputes the root from persistent
    /// metadata.
    pub fn from_leaves<I: IntoIterator<Item = (u64, Line)>>(height: u32, leaves: I) -> Self {
        let mut t = MerkleTree::new(height);
        // Insert leaf hashes first, then hash each affected parent once per
        // level (bulk build; equivalent to repeated update_leaf but O(n)).
        let mut touched: Vec<u64> = Vec::new();
        for (index, line) in leaves {
            assert!(index < t.capacity(), "leaf index out of range");
            t.set_node(0, index, sha1(line.as_bytes()));
            touched.push(index);
        }
        for level in 0..height {
            touched = {
                let mut parents: Vec<u64> = touched.iter().map(|i| i / ARITY as u64).collect();
                parents.sort_unstable();
                parents.dedup();
                parents
            };
            for &idx in &touched {
                let first_child = idx * ARITY as u64;
                let parts: Vec<NodeHash> = (0..ARITY as u64)
                    .map(|i| t.node(level, first_child + i))
                    .collect();
                let refs: Vec<&[u8]> = parts.iter().map(|h| h.as_slice()).collect();
                t.set_node(level + 1, idx, sha1_concat(&refs));
            }
        }
        t
    }

    /// Total leaf updates performed (each costs the I1–I3 latency chain).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Number of materialized (non-default) nodes.
    pub fn materialized_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_has_default_root() {
        let a = MerkleTree::new(8);
        let b = MerkleTree::new(8);
        assert_eq!(a.root(), b.root());
        assert_eq!(a.materialized_nodes(), 0);
    }

    #[test]
    fn update_changes_root_deterministically() {
        let mut a = MerkleTree::new(4);
        let mut b = MerkleTree::new(4);
        a.update_leaf(7, &Line::splat(1));
        b.update_leaf(7, &Line::splat(1));
        assert_eq!(a.root(), b.root());
        b.update_leaf(8, &Line::splat(2));
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn order_of_updates_does_not_matter() {
        let mut a = MerkleTree::new(4);
        a.update_leaf(1, &Line::splat(1));
        a.update_leaf(2, &Line::splat(2));
        let mut b = MerkleTree::new(4);
        b.update_leaf(2, &Line::splat(2));
        b.update_leaf(1, &Line::splat(1));
        assert_eq!(a.root(), b.root());
    }

    #[test]
    fn verify_leaf_detects_tamper() {
        let mut t = MerkleTree::new(4);
        t.update_leaf(3, &Line::splat(5));
        assert!(t.verify_leaf(3, &Line::splat(5)));
        assert!(!t.verify_leaf(3, &Line::splat(6)));
        // Unwritten leaf verifies as zero.
        assert!(t.verify_leaf(9, &Line::zero()));
        assert!(!t.verify_leaf(9, &Line::splat(1)));
    }

    #[test]
    fn internal_tamper_detected() {
        let mut t = MerkleTree::new(3);
        t.update_leaf(0, &Line::splat(1));
        // Corrupt an internal node directly.
        t.nodes.insert((1, 0), [0xFF; 20]);
        assert!(!t.verify_leaf(0, &Line::splat(1)));
    }

    #[test]
    fn bulk_build_matches_incremental() {
        let leaves = vec![
            (0u64, Line::splat(1)),
            (63, Line::splat(2)),
            (64, Line::splat(3)),
            (4000, Line::splat(4)),
        ];
        let bulk = MerkleTree::from_leaves(4, leaves.clone());
        let mut inc = MerkleTree::new(4);
        for (i, l) in leaves {
            inc.update_leaf(i, &l);
        }
        assert_eq!(bulk.root(), inc.root());
    }

    #[test]
    fn zeroing_restores_default_and_prunes() {
        let mut t = MerkleTree::new(5);
        let root0 = t.root();
        t.update_leaf(100, &Line::splat(7));
        assert!(t.materialized_nodes() > 0);
        t.update_leaf(100, &Line::zero());
        assert_eq!(t.root(), root0);
        assert_eq!(t.materialized_nodes(), 0, "default nodes are pruned");
    }

    #[test]
    fn capacity_matches_height() {
        assert_eq!(MerkleTree::new(2).capacity(), 64);
        assert_eq!(MerkleTree::new(8).capacity(), 16_777_216);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_leaf_panics() {
        MerkleTree::new(2).update_leaf(64, &Line::zero());
    }

    #[test]
    fn update_counter() {
        let mut t = MerkleTree::new(3);
        t.update_leaf(0, &Line::splat(1));
        t.update_leaf(1, &Line::splat(2));
        assert_eq!(t.updates(), 2);
    }
}
