//! Bonsai-Merkle-Tree integrity verification (sparse, SHA-1, arity 8).
//!
//! "The leaf nodes of the tree are counters and the intermediate nodes are
//! hashes of their child nodes. Therefore, the root hash is essentially the
//! hash of all leaf nodes. Keeping the root hash in a secured non-volatile
//! register ensures the integrity of the entire memory." (§4.2)
//!
//! The tree covers the co-located counter/remap metadata region. Since that
//! region is almost entirely zero-initialized, the tree is stored sparsely:
//! only nodes that differ from the "all-descendants-zero" default are
//! materialized, with per-level default hashes precomputed. This makes a
//! 2²⁴-leaf tree practical while remaining bit-for-bit well defined, so the
//! root can be recomputed from persistent metadata during crash recovery and
//! compared against the secure register.
//!
//! Leaf updates are folded into the hash structure lazily: `update_leaf`
//! only records the new leaf content (latest write wins), and the path
//! hashes are recomputed in bulk the first time the tree is observed
//! (`root`, `verify_leaf`, …). Because every node hash is a pure function of
//! the leaf contents, the observed values are identical to eager
//! recomputation — but a burst of writes between observations costs one
//! shared bulk rebuild instead of one root-path rehash per write, which is
//! what makes the simulator's batched hot path affordable.

use std::cell::RefCell;

use janus_crypto::sha1::{sha1, Sha1};
use janus_nvm::line::Line;
use janus_sim::hash::FxHashMap;

/// Fan-out of every internal node.
pub const ARITY: usize = 8;

/// A 160-bit SHA-1 node hash.
pub type NodeHash = [u8; 20];

/// The sparse Merkle tree.
///
/// Level 0 holds leaf hashes (one per metadata line); level `height` is the
/// root.
///
/// # Example
///
/// ```
/// use janus_bmo::integrity::MerkleTree;
/// use janus_nvm::line::Line;
///
/// let mut t = MerkleTree::new(8);
/// let empty_root = t.root();
/// t.update_leaf(42, &Line::splat(9));
/// assert_ne!(t.root(), empty_root);
/// t.update_leaf(42, &Line::zero());
/// assert_eq!(t.root(), empty_root, "zeroing restores the default root");
/// ```
#[derive(Clone, Debug)]
pub struct MerkleTree {
    height: u32,
    /// `default[l]` = hash of a level-`l` node whose descendants are all
    /// zero lines.
    default: Vec<NodeHash>,
    updates: u64,
    /// Hash structure plus not-yet-hashed leaf writes; interior-mutable so
    /// read-only observers (`root`, `verify_leaf`) can trigger the flush.
    state: RefCell<TreeState>,
}

#[derive(Clone, Debug)]
struct TreeState {
    /// `(level, index) → hash` for nodes differing from the default.
    nodes: FxHashMap<(u32, u64), NodeHash>,
    /// Leaf writes not yet folded into `nodes` (latest content wins).
    pending: FxHashMap<u64, Line>,
}

impl TreeState {
    fn node(&self, default: &[NodeHash], level: u32, index: u64) -> NodeHash {
        self.nodes
            .get(&(level, index))
            .copied()
            .unwrap_or(default[level as usize])
    }

    fn set_node(&mut self, default: &[NodeHash], level: u32, index: u64, hash: NodeHash) {
        if hash == default[level as usize] {
            self.nodes.remove(&(level, index));
        } else {
            self.nodes.insert((level, index), hash);
        }
    }
}

impl MerkleTree {
    /// Creates an empty tree of the given height (levels of hashing above
    /// the leaves; capacity = `ARITY^height` leaves).
    ///
    /// # Panics
    ///
    /// Panics if `height` is 0 or large enough to overflow leaf indexing.
    pub fn new(height: u32) -> Self {
        assert!((1..=20).contains(&height), "unreasonable tree height");
        let mut default = Vec::with_capacity(height as usize + 1);
        default.push(sha1(Line::zero().as_bytes()));
        for l in 0..height as usize {
            let child = default[l];
            let mut s = Sha1::new();
            for _ in 0..ARITY {
                s.update(&child);
            }
            default.push(s.finalize());
        }
        MerkleTree {
            height,
            default,
            updates: 0,
            state: RefCell::new(TreeState {
                nodes: FxHashMap::default(),
                pending: FxHashMap::default(),
            }),
        }
    }

    /// Number of leaves the tree covers.
    pub fn capacity(&self) -> u64 {
        (ARITY as u64).pow(self.height)
    }

    /// Height (hash levels above the leaves).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Records new content for leaf `index` (sub-operations I1–I3 in the
    /// timing model). The hash path is recomputed lazily on the next
    /// observation of the tree.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the tree capacity.
    pub fn update_leaf(&mut self, index: u64, content: &Line) {
        assert!(index < self.capacity(), "leaf index out of range");
        self.updates += 1;
        self.state.get_mut().pending.insert(index, *content);
    }

    /// Folds all pending leaf writes into the hash structure: sets the leaf
    /// hashes, then recomputes each dirty parent once per level (same bulk
    /// walk as `from_leaves`). Node hashes are pure functions of leaf
    /// content, so the result is identical to eager per-write path updates.
    fn flush(&self) {
        let mut st = self.state.borrow_mut();
        if st.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut st.pending);
        let mut touched: Vec<u64> = Vec::with_capacity(pending.len());
        for (index, line) in &pending {
            let h = sha1(line.as_bytes());
            st.set_node(&self.default, 0, *index, h);
            touched.push(*index);
        }
        for level in 0..self.height {
            for i in touched.iter_mut() {
                *i /= ARITY as u64;
            }
            touched.sort_unstable();
            touched.dedup();
            for &idx in &touched {
                let first_child = idx * ARITY as u64;
                let mut s = Sha1::new();
                for i in 0..ARITY as u64 {
                    s.update(&st.node(&self.default, level, first_child + i));
                }
                let h = s.finalize();
                st.set_node(&self.default, level + 1, idx, h);
            }
        }
    }

    /// The current root hash.
    pub fn root(&self) -> NodeHash {
        self.flush();
        self.state.borrow().node(&self.default, self.height, 0)
    }

    /// Verifies that leaf `index` currently hashes `content` and that its
    /// path is consistent up to the root.
    pub fn verify_leaf(&self, index: u64, content: &Line) -> bool {
        self.flush();
        let st = self.state.borrow();
        if st.node(&self.default, 0, index) != sha1(content.as_bytes()) {
            return false;
        }
        // Recompute the path bottom-up from stored children.
        let mut idx = index;
        for level in 0..self.height {
            idx /= ARITY as u64;
            let first_child = idx * ARITY as u64;
            let mut s = Sha1::new();
            for i in 0..ARITY as u64 {
                s.update(&st.node(&self.default, level, first_child + i));
            }
            if s.finalize() != st.node(&self.default, level + 1, idx) {
                return false;
            }
        }
        true
    }

    /// Builds a tree from an iterator of `(leaf_index, line)` pairs — the
    /// crash-recovery path that recomputes the root from persistent
    /// metadata.
    pub fn from_leaves<I: IntoIterator<Item = (u64, Line)>>(height: u32, leaves: I) -> Self {
        let mut t = MerkleTree::new(height);
        let cap = t.capacity();
        let pending = &mut t.state.get_mut().pending;
        for (index, line) in leaves {
            assert!(index < cap, "leaf index out of range");
            pending.insert(index, line);
        }
        t.flush();
        t
    }

    /// Total leaf updates performed (each costs the I1–I3 latency chain).
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Number of materialized (non-default) nodes.
    pub fn materialized_nodes(&self) -> usize {
        self.flush();
        self.state.borrow().nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_has_default_root() {
        let a = MerkleTree::new(8);
        let b = MerkleTree::new(8);
        assert_eq!(a.root(), b.root());
        assert_eq!(a.materialized_nodes(), 0);
    }

    #[test]
    fn update_changes_root_deterministically() {
        let mut a = MerkleTree::new(4);
        let mut b = MerkleTree::new(4);
        a.update_leaf(7, &Line::splat(1));
        b.update_leaf(7, &Line::splat(1));
        assert_eq!(a.root(), b.root());
        b.update_leaf(8, &Line::splat(2));
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn order_of_updates_does_not_matter() {
        let mut a = MerkleTree::new(4);
        a.update_leaf(1, &Line::splat(1));
        a.update_leaf(2, &Line::splat(2));
        let mut b = MerkleTree::new(4);
        b.update_leaf(2, &Line::splat(2));
        b.update_leaf(1, &Line::splat(1));
        assert_eq!(a.root(), b.root());
    }

    #[test]
    fn lazy_flush_matches_eager_observation() {
        // Observing the root between every update must give the same final
        // state as observing once at the end.
        let mut eager = MerkleTree::new(4);
        let mut lazy = MerkleTree::new(4);
        for i in 0..32u64 {
            eager.update_leaf(i % 7, &Line::splat(i as u8));
            let _ = eager.root(); // force a flush per write
            lazy.update_leaf(i % 7, &Line::splat(i as u8));
        }
        assert_eq!(eager.root(), lazy.root());
        assert_eq!(eager.materialized_nodes(), lazy.materialized_nodes());
    }

    #[test]
    fn verify_leaf_detects_tamper() {
        let mut t = MerkleTree::new(4);
        t.update_leaf(3, &Line::splat(5));
        assert!(t.verify_leaf(3, &Line::splat(5)));
        assert!(!t.verify_leaf(3, &Line::splat(6)));
        // Unwritten leaf verifies as zero.
        assert!(t.verify_leaf(9, &Line::zero()));
        assert!(!t.verify_leaf(9, &Line::splat(1)));
    }

    #[test]
    fn internal_tamper_detected() {
        let mut t = MerkleTree::new(3);
        t.update_leaf(0, &Line::splat(1));
        let _ = t.root(); // flush before corrupting
                          // Corrupt an internal node directly.
        t.state.get_mut().nodes.insert((1, 0), [0xFF; 20]);
        assert!(!t.verify_leaf(0, &Line::splat(1)));
    }

    #[test]
    fn bulk_build_matches_incremental() {
        let leaves = vec![
            (0u64, Line::splat(1)),
            (63, Line::splat(2)),
            (64, Line::splat(3)),
            (4000, Line::splat(4)),
        ];
        let bulk = MerkleTree::from_leaves(4, leaves.clone());
        let mut inc = MerkleTree::new(4);
        for (i, l) in leaves {
            inc.update_leaf(i, &l);
        }
        assert_eq!(bulk.root(), inc.root());
    }

    #[test]
    fn zeroing_restores_default_and_prunes() {
        let mut t = MerkleTree::new(5);
        let root0 = t.root();
        t.update_leaf(100, &Line::splat(7));
        assert!(t.materialized_nodes() > 0);
        t.update_leaf(100, &Line::zero());
        assert_eq!(t.root(), root0);
        assert_eq!(t.materialized_nodes(), 0, "default nodes are pruned");
    }

    #[test]
    fn capacity_matches_height() {
        assert_eq!(MerkleTree::new(2).capacity(), 64);
        assert_eq!(MerkleTree::new(8).capacity(), 16_777_216);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_leaf_panics() {
        MerkleTree::new(2).update_leaf(64, &Line::zero());
    }

    #[test]
    fn update_counter() {
        let mut t = MerkleTree::new(3);
        t.update_leaf(0, &Line::splat(1));
        t.update_leaf(1, &Line::splat(2));
        assert_eq!(t.updates(), 2);
    }
}
