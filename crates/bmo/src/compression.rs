//! Base-Delta-Immediate (BDI) cache-line compression.
//!
//! Table 1 lists inline compression among the bandwidth BMOs, citing
//! Pekhimenko et al.'s BDI scheme (PACT 2012): a 64-byte line is encoded as
//! one *base* value plus small per-word *deltas* when its values are close
//! together — which real data very often is (pointers into one region,
//! counters, zero padding).
//!
//! This module implements the classic scheme menu:
//!
//! | scheme | base | delta | compressed size |
//! |---|---|---|---|
//! | `Zeros` | — | — | 1 B |
//! | `Repeat8` | 8 B | 0 | 9 B |
//! | `B8D1` | 8 B | 1 B | 16 B |
//! | `B8D2` | 8 B | 2 B | 24 B |
//! | `B8D4` | 8 B | 4 B | 40 B |
//! | `B4D1` | 4 B | 1 B | 20 B |
//! | `B4D2` | 4 B | 2 B | 36 B |
//! | `B2D1` | 2 B | 1 B | 34 B |
//!
//! The encoder picks the smallest applicable scheme; decode is exact. The
//! extended-BMO pipeline uses it to shrink NVM write payloads (the C1
//! sub-operation), and the harness reports achieved compression ratios.

use janus_nvm::line::{Line, LINE_BYTES};

/// The encoding chosen for a line.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// All 64 bytes are zero.
    Zeros,
    /// Eight identical 8-byte words.
    Repeat8,
    /// 8-byte base + 1-byte deltas.
    B8D1,
    /// 8-byte base + 2-byte deltas.
    B8D2,
    /// 8-byte base + 4-byte deltas.
    B8D4,
    /// 4-byte base + 1-byte deltas.
    B4D1,
    /// 4-byte base + 2-byte deltas.
    B4D2,
    /// 2-byte base + 1-byte deltas.
    B2D1,
    /// Incompressible: stored raw.
    Raw,
}

impl Scheme {
    /// Compressed size in bytes (64 for `Raw`).
    pub fn size(self) -> usize {
        match self {
            Scheme::Zeros => 1,
            Scheme::Repeat8 => 9,
            Scheme::B8D1 => 16,
            Scheme::B8D2 => 24,
            Scheme::B8D4 => 40,
            Scheme::B4D1 => 20,
            Scheme::B4D2 => 36,
            Scheme::B2D1 => 34,
            Scheme::Raw => LINE_BYTES,
        }
    }

    /// Wire tag for persistence (fits one byte).
    pub fn tag(self) -> u8 {
        match self {
            Scheme::Zeros => 0,
            Scheme::Repeat8 => 1,
            Scheme::B8D1 => 2,
            Scheme::B8D2 => 3,
            Scheme::B8D4 => 4,
            Scheme::B4D1 => 5,
            Scheme::B4D2 => 6,
            Scheme::B2D1 => 7,
            Scheme::Raw => 255,
        }
    }

    /// Parses a wire tag.
    pub fn from_tag(tag: u8) -> Option<Scheme> {
        Some(match tag {
            0 => Scheme::Zeros,
            1 => Scheme::Repeat8,
            2 => Scheme::B8D1,
            3 => Scheme::B8D2,
            4 => Scheme::B8D4,
            5 => Scheme::B4D1,
            6 => Scheme::B4D2,
            7 => Scheme::B2D1,
            255 => Scheme::Raw,
            _ => return None,
        })
    }
}

/// A compressed line: the scheme plus its payload bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Compressed {
    /// Chosen scheme.
    pub scheme: Scheme,
    /// Encoded payload (`scheme.size()` bytes; for `Raw`, the line itself).
    pub bytes: Vec<u8>,
}

impl Compressed {
    /// Compression ratio (original / compressed).
    pub fn ratio(&self) -> f64 {
        LINE_BYTES as f64 / self.bytes.len() as f64
    }
}

fn words<const W: usize>(line: &Line) -> Vec<u64> {
    line.as_bytes()
        .chunks_exact(W)
        .map(|c| {
            let mut v = 0u64;
            for (i, b) in c.iter().enumerate() {
                v |= (*b as u64) << (8 * i);
            }
            v
        })
        .collect()
}

/// Tries base-size `W`, delta-size `D`; returns the payload on success:
/// base (W bytes) + one D-byte delta per word.
fn try_base_delta<const W: usize, const D: usize>(line: &Line) -> Option<Vec<u8>> {
    let ws = words::<W>(line);
    let base = ws[0];
    let limit = 1i128 << (8 * D - 1);
    let mut out = Vec::with_capacity(W + ws.len() * D);
    out.extend_from_slice(&base.to_le_bytes()[..W]);
    for &w in &ws {
        let delta = w as i128 - base as i128;
        if delta < -limit || delta >= limit {
            return None;
        }
        out.extend_from_slice(&(delta as i64).to_le_bytes()[..D]);
    }
    Some(out)
}

/// Compresses a line with the best applicable scheme.
pub fn compress(line: &Line) -> Compressed {
    if line.is_zero() {
        return Compressed {
            scheme: Scheme::Zeros,
            bytes: vec![0],
        };
    }
    let w8 = words::<8>(line);
    if w8.iter().all(|&w| w == w8[0]) {
        let mut bytes = vec![0u8; 9];
        bytes[..8].copy_from_slice(&w8[0].to_le_bytes());
        bytes[8] = 1;
        return Compressed {
            scheme: Scheme::Repeat8,
            bytes,
        };
    }
    // Try schemes from smallest compressed size upward.
    type Encoder = fn(&Line) -> Option<Vec<u8>>;
    let candidates: [(Scheme, Encoder); 6] = [
        (Scheme::B8D1, try_base_delta::<8, 1>),
        (Scheme::B4D1, try_base_delta::<4, 1>),
        (Scheme::B8D2, try_base_delta::<8, 2>),
        (Scheme::B2D1, try_base_delta::<2, 1>),
        (Scheme::B4D2, try_base_delta::<4, 2>),
        (Scheme::B8D4, try_base_delta::<8, 4>),
    ];
    for (scheme, f) in candidates {
        if let Some(bytes) = f(line) {
            debug_assert_eq!(bytes.len(), scheme.size());
            return Compressed { scheme, bytes };
        }
    }
    Compressed {
        scheme: Scheme::Raw,
        bytes: line.as_bytes().to_vec(),
    }
}

/// Decompresses a payload produced by [`compress`].
///
/// # Panics
///
/// Panics if the payload length does not match the scheme.
pub fn decompress(c: &Compressed) -> Line {
    assert_eq!(c.bytes.len(), c.scheme.size(), "corrupt payload");
    match c.scheme {
        Scheme::Zeros => Line::zero(),
        Scheme::Repeat8 => {
            let w = u64::from_le_bytes(c.bytes[..8].try_into().expect("8 bytes"));
            Line::from_words(&[w; 8])
        }
        Scheme::Raw => {
            let bytes: [u8; LINE_BYTES] = c.bytes.as_slice().try_into().expect("64 bytes");
            Line(bytes)
        }
        Scheme::B8D1 => un_base_delta::<8, 1>(&c.bytes),
        Scheme::B8D2 => un_base_delta::<8, 2>(&c.bytes),
        Scheme::B8D4 => un_base_delta::<8, 4>(&c.bytes),
        Scheme::B4D1 => un_base_delta::<4, 1>(&c.bytes),
        Scheme::B4D2 => un_base_delta::<4, 2>(&c.bytes),
        Scheme::B2D1 => un_base_delta::<2, 1>(&c.bytes),
    }
}

fn un_base_delta<const W: usize, const D: usize>(bytes: &[u8]) -> Line {
    let mut base_bytes = [0u8; 8];
    base_bytes[..W].copy_from_slice(&bytes[..W]);
    let base = u64::from_le_bytes(base_bytes);
    let mask: u64 = if W == 8 {
        u64::MAX
    } else {
        (1u64 << (8 * W)) - 1
    };
    let mut out = [0u8; LINE_BYTES];
    for (k, d) in bytes[W..].chunks_exact(D).enumerate() {
        // Sign-extend the delta.
        let mut db = [0u8; 8];
        db[..D].copy_from_slice(d);
        let mut delta = i64::from_le_bytes(db);
        let shift = 64 - 8 * D as u32;
        delta = (delta << shift) >> shift;
        let w = (base as i128 + delta as i128) as u64 & mask;
        out[k * W..(k + 1) * W].copy_from_slice(&w.to_le_bytes()[..W]);
    }
    Line(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_sim::rng::SimRng;

    fn round_trip(line: Line) -> Scheme {
        let c = compress(&line);
        assert_eq!(decompress(&c), line, "scheme {:?}", c.scheme);
        c.scheme
    }

    #[test]
    fn zeros_compress_to_one_byte() {
        assert_eq!(round_trip(Line::zero()), Scheme::Zeros);
        assert_eq!(compress(&Line::zero()).bytes.len(), 1);
    }

    #[test]
    fn repeated_word_compresses() {
        let line = Line::from_words(&[0xDEAD_BEEF_CAFE; 8]);
        assert_eq!(round_trip(line), Scheme::Repeat8);
    }

    #[test]
    fn nearby_pointers_use_b8d1() {
        // Eight pointers into one 256-byte region.
        let base = 0x7FFF_AA00_1000u64;
        let line = Line::from_words(&[
            base,
            base + 24,
            base + 48,
            base + 8,
            base + 120,
            base + 96,
            base + 64,
            base + 32,
        ]);
        assert_eq!(round_trip(line), Scheme::B8D1);
    }

    #[test]
    fn wider_deltas_fall_through_schemes() {
        let base = 1u64 << 40;
        let line = Line::from_words(&[base, base + 1000, base, base, base, base, base, base]);
        let s = round_trip(line);
        assert_eq!(s, Scheme::B8D2);
        let line4 = Line::from_words(&[base, base + 1_000_000, base, base, base, base, base, base]);
        assert_eq!(round_trip(line4), Scheme::B8D4);
    }

    #[test]
    fn small_values_use_narrow_bases() {
        // 16 small u32 values with tiny spread → B4D1.
        let mut bytes = [0u8; LINE_BYTES];
        for k in 0..16 {
            let v = 5000u32 + k as u32;
            bytes[k * 4..k * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        let s = round_trip(Line(bytes));
        assert!(matches!(s, Scheme::B4D1 | Scheme::B8D1), "{s:?}");
    }

    #[test]
    fn random_data_is_raw() {
        let mut rng = SimRng::new(1);
        let mut bytes = [0u8; LINE_BYTES];
        rng.fill_bytes(&mut bytes);
        assert_eq!(round_trip(Line(bytes)), Scheme::Raw);
    }

    #[test]
    fn negative_deltas_round_trip() {
        let base = 1000u64;
        let line = Line::from_words(&[
            base,
            base - 100,
            base - 1,
            base,
            base - 50,
            base,
            base,
            base,
        ]);
        let s = round_trip(line);
        assert_eq!(s, Scheme::B8D1);
    }

    #[test]
    fn exhaustive_round_trip_fuzz() {
        let mut rng = SimRng::new(99);
        for case in 0..2_000 {
            let mut bytes = [0u8; LINE_BYTES];
            match case % 5 {
                0 => {
                    // structured: base + small deltas
                    let base = rng.next_u64() >> 8;
                    for k in 0..8 {
                        let w = base.wrapping_add(rng.gen_range(256));
                        bytes[k * 8..k * 8 + 8].copy_from_slice(&w.to_le_bytes());
                    }
                }
                1 => rng.fill_bytes(&mut bytes),
                2 => {} // zeros
                3 => {
                    let w = rng.next_u64();
                    for k in 0..8 {
                        bytes[k * 8..k * 8 + 8].copy_from_slice(&w.to_le_bytes());
                    }
                }
                _ => {
                    let base = rng.gen_range(1 << 16) as u32;
                    for k in 0..16 {
                        let v = base.wrapping_add(rng.gen_range(100) as u32);
                        bytes[k * 4..k * 4 + 4].copy_from_slice(&v.to_le_bytes());
                    }
                }
            }
            round_trip(Line(bytes));
        }
    }

    #[test]
    fn scheme_tags_round_trip() {
        for s in [
            Scheme::Zeros,
            Scheme::Repeat8,
            Scheme::B8D1,
            Scheme::B8D2,
            Scheme::B8D4,
            Scheme::B4D1,
            Scheme::B4D2,
            Scheme::B2D1,
            Scheme::Raw,
        ] {
            assert_eq!(Scheme::from_tag(s.tag()), Some(s));
        }
        assert_eq!(Scheme::from_tag(42), None);
    }

    #[test]
    fn sizes_are_monotone_sane() {
        assert!(Scheme::Zeros.size() < Scheme::Repeat8.size());
        assert!(Scheme::B8D1.size() < Scheme::B8D2.size());
        assert!(Scheme::B8D2.size() < Scheme::B8D4.size());
        assert!(Scheme::Raw.size() == LINE_BYTES);
    }
}
