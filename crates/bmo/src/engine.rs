//! The BMO timing engine: list-scheduling of sub-operations onto the shared
//! BMO units.
//!
//! Each NVM write (or pre-execution request) becomes a *job*: one instance
//! of the sub-operation dependency graph. A sub-operation becomes ready when
//! its external inputs (address/data) are available and all its predecessors
//! have finished; ready sub-operations are dispatched to the earliest-free
//! unit of the engine's [`UnitPool`] (Table 3: "BMO Units: 4 units per core
//! (execute 4 BMOs in parallel), shared").
//!
//! Two modes reproduce the paper's design points:
//!
//! * [`BmoMode::Serialized`] — the baseline: sub-operations of a write run
//!   strictly one after another (monolithic BMOs).
//! * [`BmoMode::Parallelized`] — Janus: only the dependency edges constrain
//!   ordering.
//!
//! Pre-execution is expressed through *staged inputs*: a job may be created
//! with only its address (or only its data) available; the matching
//! sub-operations are scheduled immediately and the rest wait for
//! [`BmoEngine::provide_addr`]/[`BmoEngine::provide_data`]. Stale results are
//! modeled by [`BmoEngine::invalidate_data`] (the IRB detected a data
//! mismatch: data-dependent sub-operations re-run; address-dependent results
//! are reused) and [`BmoEngine::invalidate_all`] (metadata changed under the
//! job: everything re-runs).

use std::rc::Rc;

use janus_sim::hash::FxHashMap;
use janus_sim::resource::UnitPool;
use janus_sim::time::Cycles;
use janus_trace::{Category, Tracer};

use crate::sched::SchedTemplate;
use crate::subop::{BmoKind, DepGraph, NodeId};

/// Initiation interval of a pipelined BMO unit: a unit accepts a new
/// cache-line-sized sub-operation every 10 ns even while earlier results
/// are still in flight.
pub const UNIT_II: Cycles = Cycles(40);

/// Scheduling discipline for a write's sub-operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BmoMode {
    /// Baseline: BMOs treated as monolithic, dependent operations; writes
    /// still overlap with each other on the units.
    Serialized,
    /// Stricter baseline reading: one write's BMOs at a time across the
    /// whole controller (ablation; see DESIGN.md §5a).
    SerializedGlobal,
    /// Janus: independent sub-operations overlap.
    #[default]
    Parallelized,
}

/// Handle to a job inside the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct JobId(u64);

impl JobId {
    /// The raw numeric id — the correlation key trace events use.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// The trace category a sub-operation's BMO kind maps to.
pub(crate) fn category_of(kind: BmoKind) -> Category {
    match kind {
        BmoKind::Encryption => Category::Encryption,
        BmoKind::Integrity => Category::Integrity,
        BmoKind::Dedup => Category::Dedup,
        BmoKind::Compression => Category::Compression,
        BmoKind::WearLeveling => Category::WearLeveling,
        BmoKind::Ecc => Category::Ecc,
        BmoKind::Oram => Category::Oram,
    }
}

#[derive(Clone, Debug)]
struct Job {
    submit: Cycles,
    addr_at: Option<Cycles>,
    data_at: Option<Cycles>,
    dup: bool,
    /// Completion time per node once scheduled.
    node_end: Vec<Option<Cycles>>,
    /// Cycles of unit time wasted by invalidated (re-run) sub-operations.
    wasted: Cycles,
}

/// The engine. One per memory controller.
///
/// # Example
///
/// ```
/// use janus_bmo::{BmoEngine, BmoMode, BmoLatencies, DepGraph};
/// use janus_sim::time::Cycles;
///
/// let graph = DepGraph::standard(&BmoLatencies::paper());
/// let mut eng = BmoEngine::new(graph, BmoMode::Parallelized, 4);
/// // An ordinary write: both inputs available at arrival.
/// let job = eng.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
/// let done = eng.completion(job).expect("fully scheduled");
/// assert_eq!(done, eng.graph().critical_path());
/// ```
#[derive(Clone, Debug)]
pub struct BmoEngine {
    graph: DepGraph,
    mode: BmoMode,
    pool: UnitPool,
    jobs: FxHashMap<u64, Job>,
    next_id: u64,
    topo: Vec<NodeId>,
    /// Graph-static: per-node latency, indexed by `NodeId`.
    node_latencies: Vec<Cycles>,
    /// Graph-static: `(node, latency)` of every data-dependent node
    /// (external class `Data` or `Both`).
    data_nodes: Vec<(NodeId, Cycles)>,
    /// Recycled `node_end` buffers from retired jobs; `submit` reuses them
    /// so the steady-state job lifecycle does not allocate.
    spare_node_end: Vec<Vec<Option<Cycles>>>,
    jobs_submitted: u64,
    /// Completion time of the last job in `SerializedGlobal` mode.
    serial_tail: Cycles,
    tracer: Tracer,
    /// Compiled replay templates, keyed by the job's `dup` flag (the only
    /// shape bit that varies per engine — see [`crate::sched`]). Compiled
    /// lazily on the first full submit of each shape.
    templates: [Option<Rc<SchedTemplate>>; 2],
    /// Whether full submits may replay a compiled template. Off
    /// (`set_compiled(false)`) the interpreted scheduler — the executable
    /// spec — handles everything, as before this cache existed.
    compiled: bool,
    /// Template-cache statistics: warm replays / everything else
    /// (cold compiles, contention fallbacks, staged submits).
    sched_hits: u64,
    sched_misses: u64,
    /// Reused `(window, charge)` scratch for the replay validity probe.
    replay_windows: Vec<(u64, u64)>,
}

impl BmoEngine {
    /// Creates an engine over `graph` with `units` BMO units
    /// ([`UnitPool::UNLIMITED`] for the Figure 14 "Unlimited" point).
    pub fn new(graph: DepGraph, mode: BmoMode, units: usize) -> Self {
        let topo = graph.topo_order();
        let node_latencies: Vec<Cycles> = graph.node_ids().map(|n| graph.node(n).latency).collect();
        let data_nodes: Vec<(NodeId, Cycles)> = graph
            .node_ids()
            .filter(|&n| {
                matches!(
                    graph.external_class(n),
                    crate::subop::ExternalClass::Data | crate::subop::ExternalClass::Both
                )
            })
            .map(|n| (n, graph.node(n).latency))
            .collect();
        BmoEngine {
            graph,
            mode,
            pool: UnitPool::new(units),
            jobs: FxHashMap::with_capacity_and_hasher(256, Default::default()),
            next_id: 0,
            topo,
            node_latencies,
            data_nodes,
            spare_node_end: Vec::new(),
            jobs_submitted: 0,
            serial_tail: Cycles::ZERO,
            tracer: Tracer::disabled(),
            templates: [None, None],
            compiled: true,
            sched_hits: 0,
            sched_misses: 0,
            replay_windows: Vec::new(),
        }
    }

    /// Enables or disables compiled-template replay. Disabled, every submit
    /// takes the interpreted scheduler (the executable specification the
    /// compiled path is differentially tested against); cache statistics
    /// stay zero.
    pub fn set_compiled(&mut self, on: bool) {
        self.compiled = on;
    }

    /// Schedule-template cache statistics: `(hits, misses)`. A hit is a
    /// warm template replay; a miss is a cold compile, a contention
    /// fallback to the interpreted scheduler, or a staged (partial) submit.
    /// Both stay zero when replay is disabled.
    pub fn sched_cache_stats(&self) -> (u64, u64) {
        (self.sched_hits, self.sched_misses)
    }

    /// Attaches a tracer: every scheduled sub-operation becomes a span in
    /// its BMO's category, and job lifecycle transitions (decomposed,
    /// deps-ready, invalidated) become `bmo.engine` instants, keyed by
    /// [`JobId::raw`].
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The dependency graph in use.
    pub fn graph(&self) -> &DepGraph {
        &self.graph
    }

    /// The scheduling mode.
    pub fn mode(&self) -> BmoMode {
        self.mode
    }

    /// Creates a job. `addr_at`/`data_at` give the times the external inputs
    /// become available (`None` = not yet known; supply later via
    /// [`Self::provide_addr`]/[`Self::provide_data`]). `dup` marks writes
    /// whose data the dedup BMO will find duplicated (their E3/E4 are
    /// cancelled).
    pub fn submit(
        &mut self,
        submit: Cycles,
        addr_at: Option<Cycles>,
        data_at: Option<Cycles>,
        dup: bool,
    ) -> JobId {
        let id = self.next_id;
        self.next_id += 1;
        self.jobs_submitted += 1;
        // Periodically retire fully past unit-pool ledger windows. Every
        // engine entry point runs at the event loop's monotone current
        // time, so windows before this submit can never be consulted
        // again; without this the ledger grows for the whole run.
        if self.jobs_submitted.is_multiple_of(4096) {
            self.pool.retire_before(submit);
        }
        let submit = if self.mode == BmoMode::SerializedGlobal {
            // One write's BMOs at a time across the controller.
            submit.max(self.serial_tail)
        } else {
            submit
        };
        let node_end = match self.spare_node_end.pop() {
            Some(mut buf) => {
                buf.clear();
                buf.resize(self.graph.len(), None);
                buf
            }
            None => vec![None; self.graph.len()],
        };
        self.jobs.insert(
            id,
            Job {
                submit,
                addr_at: addr_at.map(|t| t.max(submit)),
                data_at: data_at.map(|t| t.max(submit)),
                dup,
                node_end,
                wasted: Cycles::ZERO,
            },
        );
        // Decomposition: the write/pre-request became a sub-op graph
        // instance. `arg` packs the input-availability snapshot.
        self.tracer.instant(
            Category::Engine,
            "job_decomposed",
            submit,
            id,
            u64::from(addr_at.is_some()) | u64::from(data_at.is_some()) << 1 | u64::from(dup) << 2,
        );
        // A *full* submit — both inputs available at the (possibly clamped)
        // submit cycle — is a fixed request shape: replay its compiled
        // template, falling back to the interpreted scheduler under unit
        // contention. Staged submits always interpret.
        let full = addr_at.is_some_and(|t| t <= submit) && data_at.is_some_and(|t| t <= submit);
        let replayed = full && self.compiled && self.try_replay(JobId(id), submit, dup);
        if !replayed {
            if self.compiled {
                self.sched_misses += 1;
            }
            if self.tracer.causal() {
                self.tracer
                    .instant(Category::Engine, "prof_sched", submit, id, 2);
            }
            self.schedule(JobId(id));
        }
        if self.mode == BmoMode::SerializedGlobal {
            if let Some(done) = self.completion(JobId(id)) {
                self.serial_tail = self.serial_tail.max(done);
            }
        }
        JobId(id)
    }

    fn job(&self, id: JobId) -> &Job {
        self.jobs.get(&id.0).expect("unknown or retired job")
    }

    fn job_mut(&mut self, id: JobId) -> &mut Job {
        self.jobs.get_mut(&id.0).expect("unknown or retired job")
    }

    /// Supplies the address input at time `t` and schedules newly-ready
    /// sub-operations.
    pub fn provide_addr(&mut self, id: JobId, t: Cycles) {
        let job = self.job_mut(id);
        if job.addr_at.is_none() {
            job.addr_at = Some(t.max(job.submit));
            self.tracer
                .instant(Category::Engine, "deps_ready_addr", t, id.0, 0);
            self.schedule(id);
        }
    }

    /// Supplies the data input at time `t` and schedules newly-ready
    /// sub-operations.
    pub fn provide_data(&mut self, id: JobId, t: Cycles) {
        let job = self.job_mut(id);
        if job.data_at.is_none() {
            job.data_at = Some(t.max(job.submit));
            self.tracer
                .instant(Category::Engine, "deps_ready_data", t, id.0, 0);
            self.schedule(id);
        }
    }

    /// The IRB detected that the actual write's data differs from the
    /// pre-executed data (§4.3.1 case 1): data-dependent sub-operations are
    /// re-executed with the new data available at `now`; address-dependent
    /// results are reused. `dup` is the duplicate outcome under the *new*
    /// data.
    pub fn invalidate_data(&mut self, id: JobId, now: Cycles, dup: bool) {
        let job = self.jobs.get_mut(&id.0).expect("unknown or retired job");
        for &(n, lat) in &self.data_nodes {
            if job.node_end[n.0].take().is_some() {
                job.wasted += lat;
            }
        }
        job.data_at = Some(now);
        job.dup = dup;
        self.tracer
            .instant(Category::Engine, "job_invalidate_data", now, id.0, 0);
        self.schedule(id);
    }

    /// BMO metadata the job depended on changed (§4.3.1 case 2): all results
    /// are stale; everything re-runs from `now`.
    pub fn invalidate_all(&mut self, id: JobId, now: Cycles, dup: bool) {
        let job = self.jobs.get_mut(&id.0).expect("unknown or retired job");
        for (i, &lat) in self.node_latencies.iter().enumerate() {
            if job.node_end[i].take().is_some() {
                job.wasted += lat;
            }
        }
        job.addr_at = Some(now);
        job.data_at = Some(now);
        job.dup = dup;
        self.tracer
            .instant(Category::Engine, "job_invalidate_all", now, id.0, 0);
        self.schedule(id);
    }

    /// Compiled-template replay for a full submit at `submit`. Lazily
    /// compiles the shape's [`SchedTemplate`] (keyed by `dup`), probes the
    /// unit pool for room in every window the template touches, and — if
    /// everything fits — commits the whole schedule without a graph walk.
    /// Returns `false` (emitting nothing) when a window is saturated; the
    /// caller falls back to [`Self::schedule`], whose first-fit placement
    /// would genuinely differ under that contention.
    fn try_replay(&mut self, id: JobId, submit: Cycles, dup: bool) -> bool {
        let slot = usize::from(dup);
        let cold = self.templates[slot].is_none();
        if cold {
            self.templates[slot] = Some(Rc::new(SchedTemplate::compile(
                &self.graph,
                &self.topo,
                self.mode,
                dup,
            )));
        }
        let tpl = self.templates[slot]
            .as_ref()
            .expect("just compiled")
            .clone();
        let mut windows = std::mem::take(&mut self.replay_windows);
        let fits = tpl.windows_fit(submit, &self.pool, &mut windows);
        self.replay_windows = windows;
        if !fits {
            return false;
        }
        if cold {
            self.sched_misses += 1;
        } else {
            self.sched_hits += 1;
        }
        if self.tracer.causal() {
            // Cache marker for janus-prof: 0 = cold compile (+ replay),
            // 1 = warm replay; the interpreted path emits 2.
            self.tracer.instant(
                Category::Engine,
                "prof_sched",
                submit,
                id.0,
                u64::from(!cold),
            );
        }
        let job = self.jobs.get_mut(&id.0).expect("submitting job exists");
        for s in &tpl.slots {
            let ready = Cycles(submit.0 + s.rel_ready);
            let end = Cycles(submit.0 + s.rel_end);
            self.pool.record_acquisition(s.latency);
            self.pool
                .charge_window((submit.0 + s.rel_ready) / UnitPool::WINDOW, s.charge);
            if self.tracer.causal() {
                // Same causal record the interpreted scheduler emits: every
                // input of a full submit is available at the submit cycle.
                self.tracer.instant_link(
                    Category::Engine,
                    "prof_node",
                    submit,
                    id.0,
                    s.node.0 as u64,
                    ready.0,
                );
            }
            self.tracer
                .span(s.cat, s.name, ready, end, id.0, s.latency.0);
            job.node_end[s.node.0] = Some(end);
        }
        true
    }

    /// Greedy list scheduling: dispatch every node whose inputs and
    /// predecessors are satisfied. Predecessors precede their successors in
    /// `topo`, and input availability cannot change mid-walk, so a single
    /// topological pass schedules everything currently schedulable.
    fn schedule(&mut self, id: JobId) {
        let job = self.jobs.get_mut(&id.0).expect("unknown or retired job");
        for idx in 0..self.topo.len() {
            let n = self.topo[idx];
            if job.node_end[n.0].is_some() {
                continue;
            }
            let op = self.graph.node(n);
            if job.dup && op.skip_if_dup {
                continue; // cancelled entirely
            }
            // External inputs: `avail` is when the node *could* start if
            // nothing else constrained it — submission plus its operands.
            let mut avail = job.submit;
            if op.needs_addr {
                match job.addr_at {
                    Some(t) => avail = avail.max(t),
                    None => continue,
                }
            }
            if op.needs_data {
                match job.data_at {
                    Some(t) => avail = avail.max(t),
                    None => continue,
                }
            }
            // `ready` additionally waits for intra-job dependencies (and,
            // in serialized modes, monolithic ordering); ready − avail is
            // the node's dependency-wait, start − ready its unit queueing.
            let mut ready = avail;
            // Predecessors (skipped nodes are transparent).
            let mut all_preds = true;
            for &p in self.graph.preds(n) {
                let pop = self.graph.node(p);
                if job.dup && pop.skip_if_dup {
                    continue;
                }
                match job.node_end[p.0] {
                    Some(t) => ready = ready.max(t),
                    None => {
                        all_preds = false;
                        break;
                    }
                }
            }
            if !all_preds {
                continue;
            }
            // Serialized modes: also wait for every earlier node in
            // the canonical order (monolithic execution).
            if self.mode != BmoMode::Parallelized {
                let mut ok = true;
                for &m in &self.topo[..idx] {
                    let mop = self.graph.node(m);
                    if job.dup && mop.skip_if_dup {
                        continue;
                    }
                    match job.node_end[m.0] {
                        Some(t) => ready = ready.max(t),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
            }
            let (start, end) = self.pool.acquire_pipelined(ready, op.latency, UNIT_II);
            if self.tracer.causal() {
                // Causal record for janus-prof: when the node's inputs were
                // available vs. when its dependencies released it. The span
                // right after carries (start, end); together they partition
                // the node's time into dep-wait / queueing / service.
                self.tracer.instant_link(
                    Category::Engine,
                    "prof_node",
                    avail,
                    id.0,
                    n.0 as u64,
                    ready.0,
                );
            }
            self.tracer
                .span(category_of(op.bmo), op.name, start, end, id.0, op.latency.0);
            job.node_end[n.0] = Some(end);
        }
    }

    /// Completion time of the job, if every (non-cancelled) sub-operation
    /// has been scheduled; `None` while inputs are missing.
    pub fn completion(&self, id: JobId) -> Option<Cycles> {
        let job = self.job(id);
        let mut latest = job.submit;
        for n in self.graph.node_ids() {
            let op = self.graph.node(n);
            if job.dup && op.skip_if_dup {
                continue;
            }
            match job.node_end[n.0] {
                Some(t) => latest = latest.max(t),
                None => return None,
            }
        }
        Some(latest)
    }

    /// Completion time of only the sub-operations schedulable so far
    /// (partial pre-execution progress).
    pub fn partial_completion(&self, id: JobId) -> Cycles {
        let job = self.job(id);
        self.graph
            .node_ids()
            .filter_map(|n| job.node_end[n.0])
            .max()
            .unwrap_or(job.submit)
    }

    /// Unit time wasted by invalidations for this job.
    pub fn wasted(&self, id: JobId) -> Cycles {
        self.job(id).wasted
    }

    /// Releases the job's bookkeeping (results consumed by the write),
    /// recycling its buffers for future submissions.
    pub fn retire(&mut self, id: JobId) {
        if let Some(job) = self.jobs.remove(&id.0) {
            if self.spare_node_end.len() < 64 {
                self.spare_node_end.push(job.node_end);
            }
        }
    }

    /// Number of live (un-retired) jobs.
    pub fn live_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Total jobs ever submitted.
    pub fn jobs_submitted(&self) -> u64 {
        self.jobs_submitted
    }

    /// Unit-pool utilization statistics: (total busy time, acquisitions).
    pub fn pool_stats(&self) -> (Cycles, u64) {
        (self.pool.total_busy(), self.pool.acquisitions())
    }

    /// How far into the future the units are booked at `now` — the
    /// admission arbiter drops pre-execution requests when the backlog is
    /// deep (demand writes must not starve behind speculative work).
    pub fn backlog(&self, now: Cycles) -> Cycles {
        self.pool.free_at(now).saturating_sub(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::BmoLatencies;

    fn engine(mode: BmoMode, units: usize) -> BmoEngine {
        BmoEngine::new(DepGraph::standard(&BmoLatencies::paper()), mode, units)
    }

    #[test]
    fn serialized_write_takes_serial_sum() {
        let mut e = engine(BmoMode::Serialized, 4);
        let j = e.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
        assert_eq!(
            e.completion(j),
            Some(BmoLatencies::paper().serialized_total())
        );
    }

    #[test]
    fn parallelized_write_takes_critical_path() {
        let mut e = engine(BmoMode::Parallelized, 4);
        let j = e.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
        let cp = e.graph().critical_path();
        assert_eq!(e.completion(j), Some(cp));
        assert!(cp < BmoLatencies::paper().serialized_total());
    }

    #[test]
    fn pre_execution_hides_latency() {
        let mut e = engine(BmoMode::Parallelized, 4);
        // Inputs known 3000 cycles before the write arrives.
        let j = e.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
        let done = e.completion(j).unwrap();
        let arrival = Cycles(3000);
        assert!(
            done <= arrival,
            "BMOs ({done:?}) should finish before the write arrives ({arrival:?})"
        );
    }

    #[test]
    fn staged_inputs_block_dependent_nodes() {
        let mut e = engine(BmoMode::Parallelized, 4);
        // Only data known: D1–D2 can run, but nothing needing the address.
        let j = e.submit(Cycles(0), None, Some(Cycles(0)), false);
        assert_eq!(e.completion(j), None);
        let lat = BmoLatencies::paper();
        // D1 + D2 scheduled.
        assert_eq!(e.partial_completion(j), lat.dedup_hash + lat.dedup_lookup);
        // Provide the address; everything completes.
        e.provide_addr(j, Cycles(100));
        assert!(e.completion(j).is_some());
    }

    #[test]
    fn addr_only_runs_e1_e2() {
        let mut e = engine(BmoMode::Parallelized, 4);
        let j = e.submit(Cycles(0), Some(Cycles(0)), None, false);
        let lat = BmoLatencies::paper();
        assert_eq!(e.completion(j), None);
        assert_eq!(e.partial_completion(j), lat.counter_gen + lat.aes);
    }

    #[test]
    fn duplicate_write_skips_encryption_tail() {
        let mut e = engine(BmoMode::Parallelized, 4);
        let j = e.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), true);
        let done = e.completion(j).unwrap();
        // Critical path unchanged (I-chain dominates), but E3/E4 never ran:
        // with 4 units the unit-time must be smaller than the full graph.
        assert!(done <= e.graph().critical_path());
        let lat = BmoLatencies::paper();
        let full: Cycles = e.graph().serial_sum();
        let (busy, _) = e.pool_stats();
        assert_eq!(busy, full - lat.xor - lat.sha1);
    }

    #[test]
    fn unit_contention_stretches_completion() {
        let mut one = engine(BmoMode::Parallelized, 1);
        let j = one.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
        // A single pipelined unit staggers issue by the initiation interval
        // but does not serialize the full latencies.
        let done = one.completion(j).unwrap();
        let cp = one.graph().critical_path();
        assert!(done >= cp, "done={done:?} cp={cp:?}");
        assert!(
            done < BmoLatencies::paper().serialized_total(),
            "pipelining must beat full serialization"
        );
    }

    #[test]
    fn concurrent_jobs_contend_for_units() {
        // Pipelined units absorb a couple of concurrent writes, but a burst
        // beyond the units' issue bandwidth stretches the tail.
        let mut e = engine(BmoMode::Parallelized, 4);
        let first = e.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
        let t1 = e.completion(first).unwrap();
        let mut last = t1;
        for _ in 0..63 {
            let j = e.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
            last = e.completion(j).unwrap();
        }
        assert!(last > t1, "64-job burst must exceed unit issue bandwidth");
    }

    #[test]
    fn unlimited_units_remove_contention() {
        let mut e = engine(BmoMode::Parallelized, UnitPool::UNLIMITED);
        let cp = e.graph().critical_path();
        for _ in 0..8 {
            let j = e.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
            assert_eq!(e.completion(j), Some(cp));
        }
    }

    #[test]
    fn invalidate_data_reruns_data_dependent_nodes() {
        let mut e = engine(BmoMode::Parallelized, 4);
        let j = e.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
        let before = e.completion(j).unwrap();
        // Actual write arrives at t=5000 with different data.
        e.invalidate_data(j, Cycles(5000), false);
        let after = e.completion(j).unwrap();
        assert!(after > Cycles(5000), "data-dependent ops re-ran");
        assert!(after > before);
        assert!(e.wasted(j) > Cycles::ZERO);
        // The re-run never exceeds a from-scratch run: E1/E2 were reused
        // (the critical path itself runs through the data-dependent chain,
        // so the bound is equality in the standard graph).
        let rerun_latency = after - Cycles(5000);
        assert!(rerun_latency <= e.graph().critical_path());
    }

    #[test]
    fn invalidate_all_reruns_everything() {
        let mut e = engine(BmoMode::Parallelized, 4);
        let j = e.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
        e.invalidate_all(j, Cycles(10_000), false);
        let after = e.completion(j).unwrap();
        assert!(after >= Cycles(10_000) + e.graph().critical_path());
        assert_eq!(e.wasted(j), e.graph().serial_sum());
    }

    #[test]
    fn retire_frees_bookkeeping() {
        let mut e = engine(BmoMode::Parallelized, 4);
        let j = e.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
        assert_eq!(e.live_jobs(), 1);
        e.retire(j);
        assert_eq!(e.live_jobs(), 0);
        assert_eq!(e.jobs_submitted(), 1);
    }

    #[test]
    fn serialized_global_processes_one_write_at_a_time() {
        let mut e = engine(BmoMode::SerializedGlobal, 4);
        let serial = BmoLatencies::paper().serialized_total();
        let j1 = e.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
        let j2 = e.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
        let j3 = e.submit(Cycles(100), Some(Cycles(100)), Some(Cycles(100)), false);
        assert_eq!(e.completion(j1), Some(serial));
        assert_eq!(e.completion(j2), Some(serial * 2));
        assert_eq!(
            e.completion(j3),
            Some(serial * 3),
            "third queues behind both"
        );
    }

    #[test]
    fn serialized_global_idles_between_sparse_writes() {
        let mut e = engine(BmoMode::SerializedGlobal, 4);
        let serial = BmoLatencies::paper().serialized_total();
        let j1 = e.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
        let late = serial + Cycles(10_000);
        let j2 = e.submit(late, Some(late), Some(late), false);
        assert_eq!(e.completion(j1), Some(serial));
        assert_eq!(
            e.completion(j2),
            Some(late + serial),
            "no queuing when idle"
        );
    }

    #[test]
    fn later_submit_time_shifts_schedule() {
        let mut e = engine(BmoMode::Parallelized, 4);
        let j = e.submit(Cycles(1000), Some(Cycles(0)), Some(Cycles(0)), false);
        // Inputs "available" before submit are clamped to submit.
        assert_eq!(
            e.completion(j),
            Some(Cycles(1000) + e.graph().critical_path())
        );
    }

    #[test]
    fn schedule_cache_counts_cold_warm_and_staged() {
        let mut e = engine(BmoMode::Parallelized, UnitPool::UNLIMITED);
        // Cold compile for the non-dup shape, then two warm replays.
        e.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
        assert_eq!(e.sched_cache_stats(), (0, 1));
        e.submit(Cycles(10_000), Some(Cycles(0)), Some(Cycles(0)), false);
        e.submit(Cycles(20_000), Some(Cycles(0)), Some(Cycles(0)), false);
        assert_eq!(e.sched_cache_stats(), (2, 1));
        // The dup shape is its own template: cold once, warm after.
        e.submit(Cycles(30_000), Some(Cycles(0)), Some(Cycles(0)), true);
        assert_eq!(e.sched_cache_stats(), (2, 2));
        e.submit(Cycles(40_000), Some(Cycles(0)), Some(Cycles(0)), true);
        assert_eq!(e.sched_cache_stats(), (3, 2));
        // Staged submits never replay.
        e.submit(Cycles(50_000), Some(Cycles(50_000)), None, false);
        assert_eq!(e.sched_cache_stats(), (3, 3));
    }

    #[test]
    fn schedule_cache_disabled_stays_zero_and_matches_compiled() {
        let mut compiled = engine(BmoMode::Parallelized, 4);
        let mut interpreted = engine(BmoMode::Parallelized, 4);
        interpreted.set_compiled(false);
        for i in 0..32u64 {
            let t = Cycles(i * 100);
            let jc = compiled.submit(t, Some(t), Some(t), i % 3 == 0);
            let ji = interpreted.submit(t, Some(t), Some(t), i % 3 == 0);
            assert_eq!(compiled.completion(jc), interpreted.completion(ji));
        }
        assert_eq!(interpreted.sched_cache_stats(), (0, 0));
        let (hits, misses) = compiled.sched_cache_stats();
        assert!(hits > 0, "back-to-back full submits should warm-replay");
        assert_eq!(hits + misses, 32);
    }

    #[test]
    fn contention_falls_back_to_interpreted_identically() {
        // One unit: bursts of simultaneous submits saturate windows, forcing
        // the replay validity probe to reject and the interpreted scheduler
        // to take over — with identical completions to an always-interpreted
        // engine.
        let mut compiled = engine(BmoMode::Parallelized, 1);
        let mut interpreted = engine(BmoMode::Parallelized, 1);
        interpreted.set_compiled(false);
        let mut fallbacks = 0u64;
        for burst in 0..8u64 {
            let t = Cycles(burst * 50_000);
            for _ in 0..6 {
                let before = compiled.sched_cache_stats();
                let jc = compiled.submit(t, Some(t), Some(t), false);
                let ji = interpreted.submit(t, Some(t), Some(t), false);
                assert_eq!(compiled.completion(jc), interpreted.completion(ji));
                if compiled.sched_cache_stats().1 > before.1 {
                    fallbacks += 1;
                }
            }
        }
        assert!(
            fallbacks > 1,
            "a 1-unit pool under bursts must reject some replays"
        );
    }
}
