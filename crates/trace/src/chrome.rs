//! Chrome trace-event JSON export.
//!
//! Emits the [Trace Event Format] consumed by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev). Begin/End pairs are folded into
//! complete (`"ph":"X"`) events so the viewer never sees unbalanced
//! B/E stacks; instants become `"i"`, counters `"C"`. Timestamps are
//! microseconds: at the simulator's 4 GHz clock one cycle is 0.00025 µs,
//! formatted with five fixed decimals so equal inputs produce byte-equal
//! output (the determinism tests diff exports byte-for-byte).
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::HashMap;
use std::io::{self, Write};

use crate::event::{EventKind, TraceEvent};
use crate::json;

/// Microseconds per cycle at the simulator's 4 GHz clock.
const US_PER_CYCLE: f64 = 0.000_25;

fn push_ts(out: &mut String, cycles: u64) {
    // Five decimals exactly covers the 0.00025 µs granularity.
    out.push_str(&format!("{:.5}", cycles as f64 * US_PER_CYCLE));
}

fn push_common(out: &mut String, ev: &TraceEvent, ph: &str) {
    out.push_str("{\"name\":");
    json::write_str(out, ev.name);
    out.push_str(",\"cat\":");
    json::write_str(out, ev.cat.as_str());
    out.push_str(",\"ph\":\"");
    out.push_str(ph);
    out.push_str("\",\"ts\":");
    push_ts(out, ev.cycle.0);
    out.push_str(",\"pid\":1,\"tid\":");
    // One viewer track per category keeps concurrent spans from different
    // layers off each other's stacks.
    out.push_str(&format!("{}", track(ev)));
}

/// Stable per-category track id (Perfetto renders each tid as a lane).
fn track(ev: &TraceEvent) -> u32 {
    use crate::event::Category::*;
    match ev.cat {
        Controller => 1,
        Irb => 2,
        Queue => 3,
        Engine => 4,
        Encryption => 5,
        Integrity => 6,
        Dedup => 7,
        Compression => 8,
        WearLeveling => 9,
        Nvm => 10,
        WriteQueue => 11,
        Sim => 12,
        Ecc => 13,
        Oram => 14,
    }
}

fn push_args(out: &mut String, ev: &TraceEvent) {
    out.push_str(",\"args\":{\"id\":");
    out.push_str(&format!("{}", ev.id));
    out.push_str(",\"arg\":");
    out.push_str(&format!("{}", ev.arg));
    // Causal links only appear in profiling traces; plain traces keep
    // their exact historical byte layout.
    if ev.link != 0 {
        out.push_str(",\"link\":");
        out.push_str(&format!("{}", ev.link));
    }
    out.push_str(",\"seq\":");
    out.push_str(&format!("{}", ev.seq));
    out.push('}');
}

/// Serializes events (oldest → newest, as produced by
/// [`crate::ring::RingBuffer::snapshot`]) into a complete Chrome trace
/// document.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn export(events: &[TraceEvent], dropped: u64, out: &mut impl Write) -> io::Result<()> {
    // First pass: pair Begin/End on (name, id, track). Ends match the
    // earliest unmatched begin (spans from the analytic engine never nest
    // on the same key). Keys are indices into `events`.
    let mut open: HashMap<(&'static str, u64, u32), Vec<usize>> = HashMap::new();
    let mut end_for_begin: HashMap<usize, usize> = HashMap::new();
    let mut matched_end: Vec<bool> = vec![false; events.len()];
    for (i, ev) in events.iter().enumerate() {
        match ev.kind {
            EventKind::Begin => open.entry((ev.name, ev.id, track(ev))).or_default().push(i),
            EventKind::End => {
                if let Some(stack) = open.get_mut(&(ev.name, ev.id, track(ev))) {
                    if let Some(b) = (!stack.is_empty()).then(|| stack.remove(0)) {
                        end_for_begin.insert(b, i);
                        matched_end[i] = true;
                    }
                }
            }
            _ => {}
        }
    }

    let mut body = String::with_capacity(events.len() * 96 + 256);
    body.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (i, ev) in events.iter().enumerate() {
        let mut entry = String::with_capacity(96);
        match ev.kind {
            EventKind::Begin => {
                if let Some(&e) = end_for_begin.get(&i) {
                    push_common(&mut entry, ev, "X");
                    entry.push_str(",\"dur\":");
                    push_ts(&mut entry, events[e].cycle.0.saturating_sub(ev.cycle.0));
                } else {
                    // End fell off the ring (or the run stopped mid-span);
                    // emit the raw begin so the viewer still shows it.
                    push_common(&mut entry, ev, "B");
                }
            }
            EventKind::End => {
                if matched_end[i] {
                    continue; // folded into its begin's "X"
                }
                push_common(&mut entry, ev, "E");
            }
            EventKind::Instant => {
                push_common(&mut entry, ev, "i");
                entry.push_str(",\"s\":\"t\"");
            }
            EventKind::Counter => {
                push_common(&mut entry, ev, "C");
            }
        }
        if ev.kind == EventKind::Counter {
            entry.push_str(",\"args\":{\"value\":");
            entry.push_str(&format!("{}", ev.arg));
            entry.push('}');
        } else {
            push_args(&mut entry, ev);
        }
        entry.push('}');
        if !first {
            body.push(',');
        }
        first = false;
        body.push_str(&entry);
    }
    body.push_str(
        "],\"displayTimeUnit\":\"ns\",\"otherData\":{\"clock_ghz\":4,\"dropped_events\":",
    );
    body.push_str(&format!("{dropped}"));
    body.push_str("}}");
    out.write_all(body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Category;
    use crate::tracer::{TraceConfig, Tracer};
    use janus_sim::time::Cycles;

    fn export_str(t: &Tracer) -> String {
        let mut out = Vec::new();
        t.export_chrome(&mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn pairs_spans_into_complete_events() {
        let t = Tracer::new(&TraceConfig::default());
        t.span(Category::Encryption, "E1", Cycles(40), Cycles(140), 7, 0);
        let text = export_str(&t);
        let doc = json::parse(&text).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(evs.len(), 1);
        let x = &evs[0];
        assert_eq!(x.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(x.get("name").unwrap().as_str(), Some("E1"));
        assert_eq!(x.get("cat").unwrap().as_str(), Some("bmo.encryption"));
        // 40 cycles @4GHz = 10ns = 0.01us; duration 100 cycles = 0.025us.
        assert_eq!(x.get("ts").unwrap().as_f64(), Some(0.01));
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(0.025));
        assert_eq!(
            x.get("args").unwrap().get("id").unwrap().as_f64(),
            Some(7.0)
        );
    }

    #[test]
    fn unpaired_begin_survives_as_raw_b() {
        let t = Tracer::new(&TraceConfig::default());
        t.begin(Category::Controller, "write", Cycles(4), 1, 0);
        let text = export_str(&t);
        let doc = json::parse(&text).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("B"));
    }

    #[test]
    fn instants_and_counters_serialize() {
        let t = Tracer::new(&TraceConfig::default());
        t.instant(Category::Irb, "irb_hit", Cycles(8), 3, 0);
        t.counter(Category::WriteQueue, "wq_occupancy", Cycles(12), 5);
        let doc = json::parse(&export_str(&t)).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(evs[0].get("s").unwrap().as_str(), Some("t"));
        assert_eq!(evs[1].get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(
            evs[1].get("args").unwrap().get("value").unwrap().as_f64(),
            Some(5.0)
        );
    }

    #[test]
    fn export_is_deterministic_for_equal_inputs() {
        let build = || {
            let t = Tracer::new(&TraceConfig::default());
            for i in 0..50u64 {
                t.span(
                    Category::Dedup,
                    "D2",
                    Cycles(i * 10),
                    Cycles(i * 10 + 7),
                    i,
                    i % 3,
                );
                t.instant(Category::Queue, "enq", Cycles(i * 10 + 1), i, 0);
            }
            export_str(&t)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn reports_dropped_events() {
        let t = Tracer::new(&TraceConfig { capacity: 2 });
        for i in 0..5u64 {
            t.instant(Category::Sim, "tick", Cycles(i), i, 0);
        }
        let doc = json::parse(&export_str(&t)).unwrap();
        assert_eq!(
            doc.get("otherData")
                .unwrap()
                .get("dropped_events")
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn causal_links_serialize_only_when_set() {
        let t = Tracer::new_causal(&TraceConfig::default());
        t.instant(Category::Irb, "irb_hit", Cycles(8), 3, 0);
        t.instant_link(Category::Controller, "prof_write", Cycles(9), 4, 1, 77);
        let text = export_str(&t);
        let doc = json::parse(&text).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(evs[0].get("args").unwrap().get("link").is_none());
        assert_eq!(
            evs[1].get("args").unwrap().get("link").unwrap().as_f64(),
            Some(77.0)
        );
    }

    #[test]
    fn interleaved_same_name_spans_pair_fifo() {
        // Two pipelined E1 sub-ops for different jobs, overlapping in time.
        let t = Tracer::new(&TraceConfig::default());
        t.begin(Category::Encryption, "E1", Cycles(0), 1, 0);
        t.begin(Category::Encryption, "E1", Cycles(40), 2, 0);
        t.end(Category::Encryption, "E1", Cycles(100), 1, 0);
        t.end(Category::Encryption, "E1", Cycles(140), 2, 0);
        let doc = json::parse(&export_str(&t)).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(evs.len(), 2);
        for x in evs {
            assert_eq!(x.get("ph").unwrap().as_str(), Some("X"));
            assert_eq!(x.get("dur").unwrap().as_f64(), Some(0.025));
        }
    }
}
