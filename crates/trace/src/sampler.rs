//! Periodic metrics sampling: counter snapshots every N cycles.
//!
//! End-of-run totals hide phase behaviour — a write burst that saturates
//! the ADR queue in the first 10 µs looks identical to steady load. The
//! [`MetricsSampler`] snapshots every counter in a [`StatSet`] whenever
//! simulated time crosses the next sampling epoch, producing a time-series
//! exportable as JSON or wide-form CSV.

use std::collections::BTreeSet;

use janus_sim::stats::StatSet;
use janus_sim::time::Cycles;

use crate::event::{Category, EventKind, TraceEvent};
use crate::json;

/// One snapshot: the cycle it was taken at plus every counter's value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Simulated time of the snapshot (a multiple of the sampling period).
    pub cycle: Cycles,
    /// `(name, value)` pairs in name order (as iterated by
    /// [`StatSet::counters`]).
    pub counters: Vec<(&'static str, u64)>,
}

/// Samples a [`StatSet`] every `every` cycles. See module docs.
#[derive(Clone, Debug)]
pub struct MetricsSampler {
    every: u64,
    next: u64,
    samples: Vec<Sample>,
}

impl MetricsSampler {
    /// Creates a sampler firing every `every` cycles (minimum one).
    pub fn new(every: Cycles) -> Self {
        let every = every.0.max(1);
        MetricsSampler {
            every,
            next: every,
            samples: Vec::new(),
        }
    }

    /// Sampling period in cycles.
    pub fn period(&self) -> Cycles {
        Cycles(self.every)
    }

    /// Takes snapshots for every sampling epoch that `now` has crossed
    /// since the last call. Event-driven simulation jumps time, so one call
    /// may emit several samples (all with the same counter values — the
    /// epochs passed without activity). Returns how many were taken.
    pub fn maybe_sample(&mut self, now: Cycles, stats: &StatSet) -> usize {
        let mut taken = 0;
        while now.0 >= self.next {
            self.samples.push(Sample {
                cycle: Cycles(self.next),
                counters: stats.counters().collect(),
            });
            self.next += self.every;
            taken += 1;
        }
        taken
    }

    /// Takes one final snapshot at `now` (end of run), regardless of epoch
    /// alignment, unless one was already taken at exactly `now`.
    pub fn finish(&mut self, now: Cycles, stats: &StatSet) {
        self.maybe_sample(now, stats);
        if self.samples.last().map(|s| s.cycle) != Some(now) {
            self.samples.push(Sample {
                cycle: now,
                counters: stats.counters().collect(),
            });
        }
    }

    /// The collected time-series, oldest first.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Serializes as a JSON array of `{"cycle": …, "<counter>": …}` objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"cycle\":");
            out.push_str(&format!("{}", s.cycle.0));
            for (name, value) in &s.counters {
                out.push(',');
                json::write_str(&mut out, name);
                out.push(':');
                out.push_str(&format!("{value}"));
            }
            out.push('}');
        }
        out.push(']');
        out
    }

    /// Converts the time-series into Chrome trace `Counter` events so
    /// occupancy/utilization curves render in Perfetto as counter tracks
    /// alongside spans. One event per (sample, counter), in sample order
    /// then counter-name order — fully deterministic. Counter names are
    /// interned `&'static str`s straight from the [`StatSet`], so this
    /// allocates only the returned vector.
    pub fn to_counter_events(&self) -> Vec<TraceEvent> {
        Self::counter_events_of(&self.samples)
    }

    /// [`MetricsSampler::to_counter_events`] over a detached sample slice
    /// (as returned by e.g. `System::samples`).
    pub fn counter_events_of(samples: &[Sample]) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(samples.iter().map(|s| s.counters.len()).sum::<usize>());
        for s in samples {
            for (name, value) in &s.counters {
                out.push(TraceEvent {
                    name,
                    cat: Category::Sim,
                    kind: EventKind::Counter,
                    cycle: s.cycle,
                    id: 0,
                    arg: *value,
                    link: 0,
                    seq: 0,
                });
            }
        }
        out
    }

    /// Serializes as wide-form CSV: a `cycle` column plus one column per
    /// counter name seen in any sample (union, name order); counters absent
    /// from an early sample (not yet lazily created) read as 0.
    pub fn to_csv(&self) -> String {
        let columns: BTreeSet<&'static str> = self
            .samples
            .iter()
            .flat_map(|s| s.counters.iter().map(|(n, _)| *n))
            .collect();
        let mut out = String::from("cycle");
        for c in &columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for s in &self.samples {
            out.push_str(&format!("{}", s.cycle.0));
            for c in &columns {
                let v = s
                    .counters
                    .iter()
                    .find(|(n, _)| n == c)
                    .map_or(0, |(_, v)| *v);
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_on_epoch_crossings_only() {
        let mut s = StatSet::new();
        let mut sampler = MetricsSampler::new(Cycles(100));
        s.counter("w").add(1);
        assert_eq!(sampler.maybe_sample(Cycles(50), &s), 0);
        assert_eq!(sampler.maybe_sample(Cycles(100), &s), 1);
        s.counter("w").add(4);
        // Time jumped over epochs 200 and 300.
        assert_eq!(sampler.maybe_sample(Cycles(350), &s), 2);
        let cycles: Vec<u64> = sampler.samples().iter().map(|x| x.cycle.0).collect();
        assert_eq!(cycles, vec![100, 200, 300]);
        assert_eq!(sampler.samples()[0].counters, vec![("w", 1)]);
        assert_eq!(sampler.samples()[2].counters, vec![("w", 5)]);
    }

    #[test]
    fn finish_appends_final_unaligned_sample_once() {
        let mut s = StatSet::new();
        s.counter("w").add(2);
        let mut sampler = MetricsSampler::new(Cycles(100));
        sampler.finish(Cycles(150), &s);
        let cycles: Vec<u64> = sampler.samples().iter().map(|x| x.cycle.0).collect();
        assert_eq!(cycles, vec![100, 150]);
        // Aligned end: no duplicate.
        let mut sampler = MetricsSampler::new(Cycles(100));
        sampler.finish(Cycles(200), &s);
        let cycles: Vec<u64> = sampler.samples().iter().map(|x| x.cycle.0).collect();
        assert_eq!(cycles, vec![100, 200]);
    }

    #[test]
    fn json_and_csv_exports() {
        let mut s = StatSet::new();
        let mut sampler = MetricsSampler::new(Cycles(10));
        s.counter("reads").add(1);
        sampler.maybe_sample(Cycles(10), &s);
        s.counter("writes").add(3);
        sampler.maybe_sample(Cycles(20), &s);
        let doc = json::parse(&sampler.to_json()).unwrap();
        let arr = doc.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("cycle").unwrap().as_f64(), Some(10.0));
        assert_eq!(arr[1].get("writes").unwrap().as_f64(), Some(3.0));
        let csv = sampler.to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "cycle,reads,writes");
        assert_eq!(lines[1], "10,1,0", "missing counter reads as 0");
        assert_eq!(lines[2], "20,1,3");
    }

    #[test]
    fn counter_events_cover_every_sample_in_order() {
        let mut s = StatSet::new();
        let mut sampler = MetricsSampler::new(Cycles(10));
        s.counter("reads").add(1);
        sampler.maybe_sample(Cycles(10), &s);
        s.counter("writes").add(3);
        sampler.maybe_sample(Cycles(20), &s);
        let evs = sampler.to_counter_events();
        assert_eq!(evs.len(), 3, "1 counter at t=10 + 2 at t=20");
        assert!(evs.iter().all(|e| e.kind == EventKind::Counter));
        assert_eq!(
            (evs[0].name, evs[0].cycle, evs[0].arg),
            ("reads", Cycles(10), 1)
        );
        assert_eq!(
            (evs[2].name, evs[2].cycle, evs[2].arg),
            ("writes", Cycles(20), 3)
        );
        // Round-trips through the Chrome exporter as "C" rows.
        let mut out = Vec::new();
        crate::chrome::export(&evs, 0, &mut out).unwrap();
        let doc = json::parse(std::str::from_utf8(&out).unwrap()).unwrap();
        let arr = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert!(arr
            .iter()
            .all(|e| e.get("ph").unwrap().as_str() == Some("C")));
    }

    #[test]
    fn period_is_at_least_one() {
        let sampler = MetricsSampler::new(Cycles(0));
        assert_eq!(sampler.period(), Cycles(1));
    }
}
