//! The [`Tracer`] handle: cheap to clone, free when disabled.
//!
//! Components hold a `Tracer` by value. A disabled tracer is `None` inside —
//! every recording method starts with one branch and returns. An enabled
//! tracer shares a [`RingBuffer`] through `Rc<RefCell<…>>`; the simulator is
//! single-threaded, so the handle is intentionally `!Send`.

use std::cell::RefCell;
use std::io::{self, Write};
use std::rc::Rc;

use janus_sim::time::Cycles;

use crate::chrome;
use crate::event::{Category, EventKind, TraceEvent};
use crate::ring::RingBuffer;

/// Configuration for an enabled tracer.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Ring-buffer capacity in events. Each event is ≤ 64 bytes, so the
    /// default (65 536) caps trace memory at 4 MiB.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { capacity: 1 << 16 }
    }
}

/// Shared tracing handle. See module docs.
///
/// `Tracer::disabled()` (also `Default`) records nothing and never
/// allocates; [`Tracer::new`] allocates the ring once, up front.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<RingBuffer>>>,
    causal: bool,
}

impl Tracer {
    /// An enabled tracer with a fresh ring buffer.
    pub fn new(config: &TraceConfig) -> Self {
        Tracer {
            inner: Some(Rc::new(RefCell::new(RingBuffer::new(config.capacity)))),
            causal: false,
        }
    }

    /// An enabled tracer in *causal* mode: components additionally emit
    /// `prof_*` link events (write → job → sub-op → write-queue chains) that
    /// `janus-prof` reconstructs into per-write span DAGs. Plain traces
    /// ([`Tracer::new`]) never contain these events, so existing exports
    /// are byte-identical.
    pub fn new_causal(config: &TraceConfig) -> Self {
        Tracer {
            inner: Some(Rc::new(RefCell::new(RingBuffer::new(config.capacity)))),
            causal: true,
        }
    }

    /// A disabled tracer: every recording call is a single branch.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Whether events are being recorded.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether causal profiling events should be emitted. `false` for a
    /// disabled tracer, so instrumentation can guard a whole block with
    /// one branch.
    #[inline]
    pub fn causal(&self) -> bool {
        self.causal && self.inner.is_some()
    }

    #[inline]
    fn record(&self, ev: TraceEvent) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().push(ev);
        }
    }

    /// Records a span begin. Match with [`Tracer::end`] on the same
    /// `(name, id)`.
    #[inline]
    pub fn begin(&self, cat: Category, name: &'static str, cycle: Cycles, id: u64, arg: u64) {
        self.record(TraceEvent {
            name,
            cat,
            kind: EventKind::Begin,
            cycle,
            id,
            arg,
            seq: 0,
            link: 0,
        });
    }

    /// Records a span end.
    #[inline]
    pub fn end(&self, cat: Category, name: &'static str, cycle: Cycles, id: u64, arg: u64) {
        self.record(TraceEvent {
            name,
            cat,
            kind: EventKind::End,
            cycle,
            id,
            arg,
            seq: 0,
            link: 0,
        });
    }

    /// Records a complete span (begin at `start`, end at `end`). The
    /// simulator's analytic components know a span's full extent at
    /// scheduling time; this emits both halves in order.
    #[inline]
    pub fn span(
        &self,
        cat: Category,
        name: &'static str,
        start: Cycles,
        end: Cycles,
        id: u64,
        arg: u64,
    ) {
        if self.inner.is_some() {
            self.begin(cat, name, start, id, arg);
            self.end(cat, name, end, id, arg);
        }
    }

    /// Records a point event.
    #[inline]
    pub fn instant(&self, cat: Category, name: &'static str, cycle: Cycles, id: u64, arg: u64) {
        self.record(TraceEvent {
            name,
            cat,
            kind: EventKind::Instant,
            cycle,
            id,
            arg,
            seq: 0,
            link: 0,
        });
    }

    /// Records a point event carrying a causal link (see
    /// [`TraceEvent::link`]). Used by causal-mode instrumentation only.
    #[inline]
    pub fn instant_link(
        &self,
        cat: Category,
        name: &'static str,
        cycle: Cycles,
        id: u64,
        arg: u64,
        link: u64,
    ) {
        self.record(TraceEvent {
            name,
            cat,
            kind: EventKind::Instant,
            cycle,
            id,
            arg,
            seq: 0,
            link,
        });
    }

    /// Records a sampled level (e.g. queue occupancy); `value` lands in the
    /// event's `arg`.
    #[inline]
    pub fn counter(&self, cat: Category, name: &'static str, cycle: Cycles, value: u64) {
        self.record(TraceEvent {
            name,
            cat,
            kind: EventKind::Counter,
            cycle,
            id: 0,
            arg: value,
            seq: 0,
            link: 0,
        });
    }

    /// Events currently retained (0 when disabled).
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.borrow().len())
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events lost to ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().dropped())
    }

    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().recorded())
    }

    /// Copies the retained events, oldest → newest (empty when disabled).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.borrow().snapshot())
    }

    /// Serializes the retained events as Chrome trace-event JSON.
    ///
    /// A disabled tracer writes a valid, empty trace document.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn export_chrome(&self, out: &mut impl Write) -> io::Result<()> {
        let events = self.snapshot();
        chrome::export(&events, self.dropped(), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.begin(Category::Sim, "x", Cycles(1), 0, 0);
        t.instant(Category::Sim, "y", Cycles(2), 0, 0);
        t.counter(Category::Sim, "z", Cycles(3), 9);
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 0);
        let mut out = Vec::new();
        t.export_chrome(&mut out).unwrap();
        assert!(crate::json::parse(std::str::from_utf8(&out).unwrap()).is_ok());
    }

    #[test]
    fn clones_share_one_buffer() {
        let a = Tracer::new(&TraceConfig { capacity: 8 });
        let b = a.clone();
        a.instant(Category::Irb, "hit", Cycles(5), 1, 0);
        b.instant(Category::Irb, "miss", Cycles(6), 2, 0);
        assert_eq!(a.len(), 2);
        let snap = a.snapshot();
        assert_eq!(snap[0].name, "hit");
        assert_eq!(snap[1].name, "miss");
        assert_eq!(snap[0].seq, 0);
        assert_eq!(snap[1].seq, 1);
    }

    #[test]
    fn span_emits_begin_then_end() {
        let t = Tracer::new(&TraceConfig { capacity: 8 });
        t.span(Category::Encryption, "E1", Cycles(10), Cycles(50), 3, 0);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].kind, EventKind::Begin);
        assert_eq!(snap[0].cycle, Cycles(10));
        assert_eq!(snap[1].kind, EventKind::End);
        assert_eq!(snap[1].cycle, Cycles(50));
        assert_eq!(snap[0].id, snap[1].id);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Tracer::default().enabled());
        assert!(Tracer::new(&TraceConfig::default()).enabled());
    }

    #[test]
    fn causal_mode_is_opt_in_and_survives_clone() {
        assert!(!Tracer::disabled().causal());
        assert!(!Tracer::new(&TraceConfig::default()).causal());
        let t = Tracer::new_causal(&TraceConfig { capacity: 8 });
        assert!(t.enabled() && t.causal());
        assert!(t.clone().causal());
        t.instant_link(Category::Controller, "prof_write", Cycles(7), 1, 42, 9);
        let snap = t.snapshot();
        assert_eq!(snap[0].link, 9);
        assert_eq!(snap[0].arg, 42);
    }
}
