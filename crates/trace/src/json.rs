//! Minimal JSON support: an escaping writer and a validating parser.
//!
//! The workspace is hermetic (no crates.io), so the Chrome trace exporter
//! and the metrics registry serialize by hand through [`write_str`] /
//! [`write_f64`], and CI validates emitted files with [`parse`] — a small
//! recursive-descent parser that accepts exactly RFC 8259 JSON. The parser
//! is for validation and tests, not performance.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order (duplicate keys are kept).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was expected.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns the first syntax error with its byte offset.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are replaced; the exporter never
                            // emits them.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: "0" alone, or a nonzero digit followed by digits
        // (RFC 8259 forbids leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digits")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

/// Writes `s` as a JSON string (with quotes and escapes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a finite `f64` as a JSON number (`null` for NaN/infinity, which
/// JSON cannot represent).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip formatting is deterministic for a given
        // value, which the byte-identical-trace guarantee relies on.
        out.push_str(&format!("{v}"));
        // "1" is a valid JSON number, but keep integers distinguishable
        // from the f64 origin where it matters — not needed here.
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5, 1e3, true, false, null, "x\n\u0041"]}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(1000.0));
        assert_eq!(arr[3], Value::Bool(true));
        assert_eq!(arr[5], Value::Null);
        assert_eq!(arr[6].as_str(), Some("x\nA"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "01", "1.", "\"\\q\"", "{} x", "[1 2]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_reports_offset() {
        let e = parse("[1, @]").unwrap_err();
        assert_eq!(e.at, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn string_escaping_round_trips() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        let v = parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn f64_writer_handles_non_finite() {
        let mut out = String::new();
        write_f64(&mut out, 2.5);
        assert_eq!(out, "2.5");
        out.clear();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"héllo ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ✓"));
    }
}
