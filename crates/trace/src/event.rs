//! Trace events: the fixed-size, copyable records the ring buffer stores.
//!
//! The taxonomy mirrors the simulator's layers. *Spans* ([`EventKind::Begin`]
//! / [`EventKind::End`]) cover work with duration — a sub-operation on a BMO
//! unit, a write's arrival-to-persist interval, an NVM array access.
//! *Instants* ([`EventKind::Instant`]) mark point decisions — an IRB hit, a
//! dropped pre-execution request. *Counters* ([`EventKind::Counter`]) sample
//! a level — write-queue occupancy.

use janus_sim::time::Cycles;

/// Which simulator layer an event belongs to.
///
/// Categories become the `cat` field of the Chrome trace export, so traces
/// can be filtered per layer in Perfetto ("show me only `bmo.dedup`").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Memory-controller write/read handling (`janus-core`).
    Controller,
    /// Intermediate Result Buffer insert/hit/invalidate (`janus-core`).
    Irb,
    /// Pre-execution request queue enqueue/dequeue (`janus-core`).
    Queue,
    /// BMO engine job lifecycle: decomposed, deps-ready, committed
    /// (`janus-bmo`).
    Engine,
    /// Counter-mode encryption sub-operations E1–E4 (`janus-bmo`).
    Encryption,
    /// Bonsai-Merkle-Tree integrity sub-operations I1–I3 (`janus-bmo`).
    Integrity,
    /// Deduplication sub-operations D1–D4 (`janus-bmo`).
    Dedup,
    /// Extended-graph compression sub-operation C1 (`janus-bmo`).
    Compression,
    /// Extended-graph wear-leveling sub-operation W1 (`janus-bmo`).
    WearLeveling,
    /// Extended-graph ECC encode sub-operation EC1 (`janus-bmo`).
    Ecc,
    /// Extended-graph ORAM relocation sub-operation O1 (`janus-bmo`).
    Oram,
    /// NVM device array reads/writes (`janus-nvm`).
    Nvm,
    /// ADR write queue acceptance/occupancy (`janus-nvm`).
    WriteQueue,
    /// Core-side simulator events (`janus-core::system`).
    Sim,
}

impl Category {
    /// The Chrome-trace `cat` string.
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Controller => "controller",
            Category::Irb => "irb",
            Category::Queue => "queue",
            Category::Engine => "bmo.engine",
            Category::Encryption => "bmo.encryption",
            Category::Integrity => "bmo.integrity",
            Category::Dedup => "bmo.dedup",
            Category::Compression => "bmo.compression",
            Category::WearLeveling => "bmo.wear",
            Category::Ecc => "bmo.ecc",
            Category::Oram => "bmo.oram",
            Category::Nvm => "nvm",
            Category::WriteQueue => "wq",
            Category::Sim => "sim",
        }
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The phase of an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Start of a span (matched by an [`EventKind::End`] with the same
    /// name and id).
    Begin,
    /// End of a span.
    End,
    /// A point event.
    Instant,
    /// A sampled level; `arg` carries the value.
    Counter,
}

/// One recorded event. `Copy` and fixed-size on purpose: recording an event
/// is a bounds-checked array store, never an allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Interned event name (`"E1"`, `"irb_hit"`, `"nvm_write"`, …).
    pub name: &'static str,
    /// Layer the event belongs to.
    pub cat: Category,
    /// Span begin/end, instant, or counter.
    pub kind: EventKind,
    /// Simulated time of the event.
    pub cycle: Cycles,
    /// Correlation id: the BMO job, issuing core, or line address the event
    /// refers to. Spans match begin↔end on `(name, id)`.
    pub id: u64,
    /// One free numeric argument (counter value, latency, line, …).
    pub arg: u64,
    /// Causal link: a second correlation value tying this event to its
    /// cause — a write uid, a parent job, or a request timestamp. `0`
    /// means "no link"; only causal-mode profiling events set it, so the
    /// plain trace export is unchanged.
    pub link: u64,
    /// Monotonic sequence number stamped by the ring buffer (insertion
    /// order survives wraparound).
    pub seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_have_unique_strings() {
        let all = [
            Category::Controller,
            Category::Irb,
            Category::Queue,
            Category::Engine,
            Category::Encryption,
            Category::Integrity,
            Category::Dedup,
            Category::Compression,
            Category::WearLeveling,
            Category::Ecc,
            Category::Oram,
            Category::Nvm,
            Category::WriteQueue,
            Category::Sim,
        ];
        let mut strs: Vec<&str> = all.iter().map(|c| c.as_str()).collect();
        strs.sort_unstable();
        strs.dedup();
        assert_eq!(strs.len(), all.len());
        assert_eq!(Category::Dedup.to_string(), "bmo.dedup");
    }

    #[test]
    fn event_is_small_and_copy() {
        // The hot path stores these by value; keep them compact.
        assert!(std::mem::size_of::<TraceEvent>() <= 64);
        let e = TraceEvent {
            name: "x",
            cat: Category::Sim,
            kind: EventKind::Instant,
            cycle: Cycles(1),
            id: 2,
            arg: 3,
            link: 0,
            seq: 0,
        };
        let f = e; // Copy
        assert_eq!(e, f);
    }
}
