#![warn(missing_docs)]

//! # janus-trace — cycle-stamped event tracing and machine-readable metrics
//!
//! Every figure the reproduction emits is a ratio of execution times; every
//! debugging session over a wrong speedup is a question about *when*
//! sub-operations fired relative to the write reaching the memory
//! controller. This crate makes both visible:
//!
//! * **Structured event trace** — a fixed-capacity, ring-buffer-backed
//!   stream of span begin/end and instant events, cycle-stamped with
//!   [`janus_sim::time::Cycles`]. Event names and categories are interned
//!   `&'static str`s and every [`event::TraceEvent`] is `Copy`, so the hot
//!   path never allocates. A disabled [`Tracer`] is a `None` check — the
//!   simulator pays one predictable branch per instrumentation point.
//! * **Chrome trace-event export** ([`chrome`]) — the recorded events
//!   serialize to the Chrome trace-event JSON format and load directly in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev). The
//!   serializer is hand-rolled ([`json`]): the workspace stays hermetic.
//! * **Metrics pipeline** ([`metrics`], [`sampler`]) — a
//!   [`metrics::MetricsRegistry`] turns [`janus_sim::stats::StatSet`]
//!   counters/histograms (and any named scalar) into JSON or CSV, and a
//!   [`sampler::MetricsSampler`] snapshots counters every N cycles into a
//!   time-series, so per-epoch occupancy/latency curves can be plotted
//!   instead of inferred from free-text dumps.
//!
//! The tracer is a cheap clonable handle ([`Tracer`]): the simulator's
//! components (memory controller, BMO engine, NVM device, write queue) each
//! hold a clone and append to the shared buffer. The simulator is
//! single-threaded by design; the handle is intentionally `!Send`.
//!
//! ```
//! use janus_trace::{Category, TraceConfig, Tracer};
//! use janus_sim::time::Cycles;
//!
//! let tracer = Tracer::new(&TraceConfig::default());
//! tracer.begin(Category::Engine, "E1", Cycles(40), 7, 0);
//! tracer.end(Category::Engine, "E1", Cycles(100), 7, 0);
//! tracer.instant(Category::Irb, "irb_hit", Cycles(120), 0, 3);
//! let mut out = Vec::new();
//! tracer.export_chrome(&mut out).unwrap();
//! assert!(janus_trace::json::parse(std::str::from_utf8(&out).unwrap()).is_ok());
//! ```

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod sampler;
pub mod tracer;

pub use event::{Category, EventKind, TraceEvent};
pub use metrics::{MetricValue, MetricsRegistry};
pub use ring::RingBuffer;
pub use sampler::{MetricsSampler, Sample};
pub use tracer::{TraceConfig, Tracer};
