//! Fixed-capacity event ring buffer.
//!
//! The buffer is allocated once (at [`RingBuffer::new`]) and never grows:
//! recording an event into a full buffer overwrites the oldest event and
//! bumps the dropped-event counter. Long runs therefore keep the most
//! recent window of activity — the part you want when a run ends wrong —
//! at a fixed memory cost, and the hot path never touches the allocator.

use crate::event::TraceEvent;

/// The ring. See module docs.
#[derive(Clone, Debug)]
pub struct RingBuffer {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event when the buffer has wrapped.
    head: usize,
    capacity: usize,
    /// Events overwritten after the buffer filled.
    dropped: u64,
    /// Next sequence number to stamp.
    seq: u64,
}

impl RingBuffer {
    /// Creates a ring holding at most `capacity` events (at least one).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            buf: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            dropped: 0,
            seq: 0,
        }
    }

    /// Records an event, stamping its sequence number. Overwrites the
    /// oldest event when full.
    pub fn push(&mut self, mut ev: TraceEvent) {
        ev.seq = self.seq;
        self.seq += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events have been recorded (or all were overwritten —
    /// impossible, the ring keeps the newest).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events lost to wraparound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// Iterates events oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, start) = self.buf.split_at(self.head.min(self.buf.len()));
        start.iter().chain(wrapped.iter())
    }

    /// Copies the retained events, oldest → newest.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, EventKind};
    use janus_sim::time::Cycles;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent {
            name: "e",
            cat: Category::Sim,
            kind: EventKind::Instant,
            cycle: Cycles(i),
            id: i,
            arg: 0,
            link: 0,
            seq: 0,
        }
    }

    #[test]
    fn keeps_insertion_order_before_wrap() {
        let mut r = RingBuffer::new(4);
        for i in 0..3 {
            r.push(ev(i));
        }
        let ids: Vec<u64> = r.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.recorded(), 3);
    }

    #[test]
    fn wraparound_evicts_oldest_and_counts_drops() {
        let mut r = RingBuffer::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.recorded(), 10);
        let ids: Vec<u64> = r.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9], "newest window retained, in order");
        // Sequence numbers are global, not per-slot.
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let mut r = RingBuffer::new(0);
        assert_eq!(r.capacity(), 1);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().id, 2);
    }

    #[test]
    fn snapshot_matches_iter() {
        let mut r = RingBuffer::new(3);
        for i in 0..5 {
            r.push(ev(i));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(snap.iter().zip(r.iter()).all(|(a, b)| a == b));
    }
}
