//! Machine-readable metrics: a named, ordered registry exportable as JSON
//! or CSV.
//!
//! The simulator's free-text report (`ExecutionReport::dump`) is for eyes;
//! this registry is for scripts. [`MetricsRegistry::from_stat_set`] lifts a
//! [`StatSet`]'s counters and histogram summaries into named scalars, and
//! callers add derived values (speedups, epoch counts) with
//! [`MetricsRegistry::set`]. Insertion order is preserved so exports diff
//! cleanly across runs.

use std::fmt;

use janus_sim::stats::StatSet;

use crate::json;

/// One metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// An exact count or cycle value.
    U64(u64),
    /// A derived ratio or mean.
    Float(f64),
    /// A label (workload name, variant).
    Str(String),
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::U64(v) => write!(f, "{v}"),
            MetricValue::Float(v) => write!(f, "{v}"),
            MetricValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Ordered name → value metric collection. See module docs.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    entries: Vec<(String, MetricValue)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a metric, replacing any previous value under the same name
    /// (keeping its original position).
    pub fn set(&mut self, name: impl Into<String>, value: MetricValue) {
        let name = name.into();
        if let Some(slot) = self.entries.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.entries.push((name, value));
        }
    }

    /// Convenience for [`MetricValue::U64`].
    pub fn set_u64(&mut self, name: impl Into<String>, value: u64) {
        self.set(name, MetricValue::U64(value));
    }

    /// Convenience for [`MetricValue::Float`].
    pub fn set_f64(&mut self, name: impl Into<String>, value: f64) {
        self.set(name, MetricValue::Float(value));
    }

    /// Convenience for [`MetricValue::Str`].
    pub fn set_str(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.set(name, MetricValue::Str(value.into()));
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates metrics in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Imports every counter and histogram summary from a [`StatSet`],
    /// prefixing names with `prefix` (pass `""` for none).
    ///
    /// Each histogram `h` contributes `h.count`, and — when it has samples —
    /// `h.mean`, `h.min`, `h.max`, `h.p50`, `h.p99` (cycles). Empty
    /// histograms contribute only their zero count: absent data stays
    /// absent instead of masquerading as zero latency.
    pub fn import_stat_set(&mut self, prefix: &str, stats: &StatSet) {
        for (name, value) in stats.counters() {
            self.set_u64(format!("{prefix}{name}"), value);
        }
        for (name, h) in stats.histograms() {
            self.set_u64(format!("{prefix}{name}.count"), h.count());
            if let Some(mean) = h.mean() {
                self.set_u64(format!("{prefix}{name}.mean"), mean.0);
                self.set_u64(format!("{prefix}{name}.min"), h.min().0);
                self.set_u64(format!("{prefix}{name}.max"), h.max().0);
                if let Some(p50) = h.percentile(0.5) {
                    self.set_u64(format!("{prefix}{name}.p50"), p50.0);
                }
                if let Some(p99) = h.percentile(0.99) {
                    self.set_u64(format!("{prefix}{name}.p99"), p99.0);
                }
            }
        }
    }

    /// Builds a registry from a [`StatSet`] alone.
    pub fn from_stat_set(stats: &StatSet) -> Self {
        let mut reg = Self::new();
        reg.import_stat_set("", stats);
        reg
    }

    /// Serializes as a single JSON object, keys in insertion order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 32 + 2);
        out.push('{');
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            out.push(':');
            match value {
                MetricValue::U64(v) => out.push_str(&format!("{v}")),
                MetricValue::Float(v) => json::write_f64(&mut out, *v),
                MetricValue::Str(s) => json::write_str(&mut out, s),
            }
        }
        out.push('}');
        out
    }

    /// Serializes as long-form CSV (`metric,value` header plus one row per
    /// metric, insertion order).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        for (name, value) in &self.entries {
            // Metric names are identifiers and values are scalars; quoting
            // is only needed for string values that could contain commas.
            match value {
                MetricValue::Str(s) if s.contains(',') || s.contains('"') => {
                    out.push_str(name);
                    out.push(',');
                    out.push('"');
                    out.push_str(&s.replace('"', "\"\""));
                    out.push_str("\"\n");
                }
                _ => {
                    out.push_str(&format!("{name},{value}\n"));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_sim::time::Cycles;

    #[test]
    fn set_preserves_order_and_replaces() {
        let mut m = MetricsRegistry::new();
        m.set_u64("b", 1);
        m.set_str("a", "x");
        m.set_u64("b", 2);
        let names: Vec<_> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["b", "a"]);
        assert_eq!(m.get("b"), Some(&MetricValue::U64(2)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn imports_stat_set_with_histogram_summaries() {
        let mut s = StatSet::new();
        s.counter("writes").add(7);
        s.histogram("lat").record(Cycles(10));
        s.histogram("lat").record(Cycles(30));
        let m = MetricsRegistry::from_stat_set(&s);
        assert_eq!(m.get("writes"), Some(&MetricValue::U64(7)));
        assert_eq!(m.get("lat.count"), Some(&MetricValue::U64(2)));
        assert_eq!(m.get("lat.mean"), Some(&MetricValue::U64(20)));
        assert_eq!(m.get("lat.min"), Some(&MetricValue::U64(10)));
        assert_eq!(m.get("lat.max"), Some(&MetricValue::U64(30)));
        assert!(m.get("lat.p99").is_some());
    }

    #[test]
    fn empty_histograms_export_count_only() {
        let mut s = StatSet::new();
        s.histogram("never"); // created but no samples
        let m = MetricsRegistry::from_stat_set(&s);
        assert_eq!(m.get("never.count"), Some(&MetricValue::U64(0)));
        assert_eq!(m.get("never.mean"), None, "no fabricated zero mean");
        assert_eq!(m.get("never.p50"), None);
    }

    #[test]
    fn json_export_parses_and_keeps_order() {
        let mut m = MetricsRegistry::new();
        m.set_str("workload", "tpcc");
        m.set_u64("writes", 10);
        m.set_f64("speedup", 2.05);
        let text = m.to_json();
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("workload").unwrap().as_str(), Some("tpcc"));
        assert_eq!(v.get("writes").unwrap().as_f64(), Some(10.0));
        assert_eq!(v.get("speedup").unwrap().as_f64(), Some(2.05));
        assert!(text.find("workload").unwrap() < text.find("speedup").unwrap());
    }

    #[test]
    fn csv_export_quotes_when_needed() {
        let mut m = MetricsRegistry::new();
        m.set_u64("n", 3);
        m.set_str("label", "a,b\"c");
        let csv = m.to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "metric,value");
        assert_eq!(lines[1], "n,3");
        assert_eq!(lines[2], "label,\"a,b\"\"c\"");
    }
}
