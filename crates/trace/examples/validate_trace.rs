//! Validates a Chrome trace-event JSON file — or a `janus-profile-v1`
//! causal profile — and prints a summary.
//!
//! ```text
//! cargo run -p janus-trace --example validate_trace -- out.json
//! cargo run -p janus-trace --example validate_trace -- profile.json
//! ```
//!
//! The file kind is detected from its shape: a `"schema":"janus-profile-v1"`
//! tag routes to the profile validator (schema fields, the
//! attributed-equals-total identity, and causal-chain contiguity — a
//! hand-corrupted causal link is rejected); anything else must be a Chrome
//! trace with a `traceEvents` array. Exits non-zero on any violation — CI
//! runs this against the quickstart's trace and profile outputs to keep
//! both exporters honest.

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: validate_trace <trace.json|profile.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match janus_trace::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if doc.get("schema").and_then(|s| s.as_str()) == Some(janus_prof::PROFILE_SCHEMA) {
        return match janus_prof::validate_profile_json(&text) {
            Ok(()) => {
                println!(
                    "{path}: OK — {} causal profile, {} writes, {} attributed cycles",
                    janus_prof::PROFILE_SCHEMA,
                    doc.get("writes").and_then(|v| v.as_f64()).unwrap_or(0.0),
                    doc.get("attributed_cycles")
                        .and_then(|v| v.as_f64())
                        .unwrap_or(0.0),
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let Some(events) = doc.get("traceEvents").and_then(|v| v.as_array()) else {
        eprintln!("error: {path}: missing \"traceEvents\" array");
        return ExitCode::FAILURE;
    };
    let mut complete = 0usize;
    let mut instants = 0usize;
    let mut counters = 0usize;
    let mut other = 0usize;
    let mut cats: Vec<String> = Vec::new();
    for ev in events {
        match ev.get("ph").and_then(|p| p.as_str()) {
            Some("X") => complete += 1,
            Some("i") => instants += 1,
            Some("C") => counters += 1,
            _ => other += 1,
        }
        if let Some(cat) = ev.get("cat").and_then(|c| c.as_str()) {
            if !cats.iter().any(|c| c == cat) {
                cats.push(cat.to_string());
            }
        }
    }
    cats.sort();
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("dropped_events"))
        .and_then(|d| d.as_f64())
        .unwrap_or(0.0);
    println!(
        "{path}: OK — {} events ({complete} spans, {instants} instants, {counters} counters, \
         {other} other), {} dropped, categories: {}",
        events.len(),
        dropped,
        cats.join(",")
    );
    ExitCode::SUCCESS
}
