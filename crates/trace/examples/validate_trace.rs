//! Validates a Chrome trace-event JSON file and prints a summary.
//!
//! ```text
//! cargo run -p janus-trace --example validate_trace -- out.json
//! ```
//!
//! Exits non-zero if the file is not well-formed JSON or lacks the
//! `traceEvents` array — CI runs this against the quickstart's trace
//! output to keep the exporter honest.

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: validate_trace <trace.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match janus_trace::json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(events) = doc.get("traceEvents").and_then(|v| v.as_array()) else {
        eprintln!("error: {path}: missing \"traceEvents\" array");
        return ExitCode::FAILURE;
    };
    let mut complete = 0usize;
    let mut instants = 0usize;
    let mut counters = 0usize;
    let mut other = 0usize;
    let mut cats: Vec<String> = Vec::new();
    for ev in events {
        match ev.get("ph").and_then(|p| p.as_str()) {
            Some("X") => complete += 1,
            Some("i") => instants += 1,
            Some("C") => counters += 1,
            _ => other += 1,
        }
        if let Some(cat) = ev.get("cat").and_then(|c| c.as_str()) {
            if !cats.iter().any(|c| c == cat) {
                cats.push(cat.to_string());
            }
        }
    }
    cats.sort();
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("dropped_events"))
        .and_then(|d| d.as_f64())
        .unwrap_or(0.0);
    println!(
        "{path}: OK — {} events ({complete} spans, {instants} instants, {counters} counters, \
         {other} other), {} dropped, categories: {}",
        events.len(),
        dropped,
        cats.join(",")
    );
    ExitCode::SUCCESS
}
