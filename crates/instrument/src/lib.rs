#![warn(missing_docs)]

//! # janus-instrument — the automated compiler pass (§4.5)
//!
//! The Janus software interface is easy to use but still requires program
//! understanding; the paper provides an LLVM pass that instruments programs
//! automatically. This crate implements the same pass over our explicit
//! program IR ([`janus_core::ir`]), following §4.5.1's three steps:
//!
//! 1. **Locate blocking writebacks** — `clwb` operations whose values a
//!    subsequent `sfence` waits on.
//! 2. **Dependency analysis** — for each writeback, find where its address
//!    was generated ([`janus_core::ir::Op::AddrGen`]) and where its data was
//!    last defined ([`janus_core::ir::Op::DataGen`]).
//! 3. **Injection** — insert `PRE_ADDR` right after address generation and
//!    `PRE_DATA` right after the last data definition, "as far away from the
//!    actual writeback as possible".
//!
//! The pass reproduces the paper's stated limitations (§4.5.2): it only
//! instruments within the same function as the writeback, it skips
//! writebacks inside loops (no runtime trip information), it refuses
//! markers that live inside loops the writeback is not in, and it keeps
//! insertions inside the writeback's conditional region.
//!
//! # Example
//!
//! ```
//! use janus_core::ir::{Op, ProgramBuilder};
//! use janus_instrument::instrument;
//! use janus_nvm::{addr::LineAddr, line::Line};
//!
//! let mut b = ProgramBuilder::new();
//! b.func("update", |b| {
//!     b.data_gen(LineAddr(4), vec![Line::splat(1)]);
//!     b.compute(100);
//!     b.addr_gen(LineAddr(4), 1);
//!     b.compute(500);
//!     b.store(LineAddr(4), Line::splat(1));
//!     b.clwb(LineAddr(4));
//!     b.fence();
//! });
//! let (instrumented, report) = instrument(&b.build());
//! assert_eq!(report.instrumented_writes, 1);
//! assert!(instrumented.ops.iter().any(|o| matches!(o, Op::PreAddr { .. })));
//! assert!(instrumented.ops.iter().any(|o| matches!(o, Op::PreData { .. })));
//! ```

pub mod dynamic;
pub mod misuse;

use janus_core::ir::{Op, PreObjId, Program};
use janus_nvm::addr::LineAddr;
use janus_nvm::line::Line;

/// Statistics of one instrumentation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstrumentReport {
    /// Blocking writebacks found.
    pub writes_found: u64,
    /// Writebacks that received at least one pre-execution call.
    pub instrumented_writes: u64,
    /// `PRE_ADDR` calls inserted.
    pub pre_addr_inserted: u64,
    /// `PRE_DATA` calls inserted.
    pub pre_data_inserted: u64,
    /// Writebacks skipped because they sit inside a loop (§4.5.2).
    pub skipped_in_loop: u64,
    /// Writebacks skipped for lack of same-function provenance markers.
    pub skipped_no_marker: u64,
}

impl InstrumentReport {
    /// Fraction of found writes that were instrumented.
    pub fn coverage(&self) -> f64 {
        if self.writes_found == 0 {
            0.0
        } else {
            self.instrumented_writes as f64 / self.writes_found as f64
        }
    }
}

/// Per-op region context computed in one linear scan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Region {
    /// Innermost function instance id (0 = top level).
    func: u32,
    /// Loop nesting depth.
    loop_depth: u32,
    /// Innermost loop instance id (valid when `loop_depth > 0`).
    loop_id: u32,
    /// Index of the innermost enclosing `CondBegin` (+1 = earliest legal
    /// insertion point inside it), if any.
    cond_begin: Option<usize>,
}

fn regions(ops: &[Op]) -> Vec<Region> {
    let mut out = Vec::with_capacity(ops.len());
    let mut func_stack = vec![0u32];
    let mut next_func = 1u32;
    let mut loop_stack: Vec<u32> = Vec::new();
    let mut next_loop = 1u32;
    let mut cond_stack: Vec<usize> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::FuncBegin(_) => {
                func_stack.push(next_func);
                next_func += 1;
            }
            Op::LoopBegin => {
                loop_stack.push(next_loop);
                next_loop += 1;
            }
            Op::CondBegin => cond_stack.push(i),
            _ => {}
        }
        out.push(Region {
            func: *func_stack.last().expect("top level"),
            loop_depth: loop_stack.len() as u32,
            loop_id: loop_stack.last().copied().unwrap_or(0),
            cond_begin: cond_stack.last().copied(),
        });
        match op {
            Op::FuncEnd => {
                func_stack.pop();
            }
            Op::LoopEnd => {
                loop_stack.pop();
            }
            Op::CondEnd => {
                cond_stack.pop();
            }
            _ => {}
        }
    }
    out
}

/// Whether the `sfence` search starting after `clwb_idx` finds a fence
/// before the function ends (i.e., this is a *blocking* writeback).
fn is_blocking(ops: &[Op], clwb_idx: usize) -> bool {
    for op in &ops[clwb_idx + 1..] {
        match op {
            Op::Fence => return true,
            Op::FuncEnd => return false,
            _ => {}
        }
    }
    false
}

/// One planned insertion: ops to splice in *before* index `at`.
struct Insertion {
    at: usize,
    ops: Vec<Op>,
}

/// Runs the pass: returns the instrumented program and a report.
///
/// Any pre-execution ops already present are preserved (the pass is
/// idempotent in practice because instrumented writebacks carry fresh
/// `pre_obj`s, but mixing manual and automated instrumentation is not
/// recommended).
pub fn instrument(program: &Program) -> (Program, InstrumentReport) {
    let ops = &program.ops;
    let regs = regions(ops);
    let mut report = InstrumentReport::default();
    let mut insertions: Vec<Insertion> = Vec::new();
    // Fresh pre_obj ids beyond any already present.
    let mut next_obj: u32 = ops
        .iter()
        .filter_map(|o| match o {
            Op::PreInit(PreObjId(n)) => Some(n + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);

    for (i, op) in ops.iter().enumerate() {
        let Op::Clwb(line) = op else { continue };
        let line = *line;
        if !is_blocking(ops, i) {
            continue;
        }
        report.writes_found += 1;

        // Limitation: writebacks inside loops are not instrumented.
        if regs[i].loop_depth > 0 {
            report.skipped_in_loop += 1;
            continue;
        }

        let addr_marker = find_addr_marker(ops, &regs, i, line);
        let data_marker = find_data_marker(ops, &regs, i, line);
        if addr_marker.is_none() && data_marker.is_none() {
            report.skipped_no_marker += 1;
            continue;
        }

        let obj = PreObjId(next_obj);
        next_obj += 1;
        let mut first_insert_at = usize::MAX;

        // Each writeback gets a request narrowed to its own cache line —
        // the pass analyzed this specific `clwb`, not the whole object the
        // marker covers (a naive whole-object request per writeback would
        // flood the bounded request/operation queues).
        let mut planned: Vec<(usize, Op)> = Vec::new();
        if let Some((at, _nlines)) = addr_marker {
            let at = clamp_to_cond(&regs, i, at);
            planned.push((
                at,
                Op::PreAddr {
                    obj,
                    line,
                    nlines: 1,
                },
            ));
            report.pre_addr_inserted += 1;
            first_insert_at = first_insert_at.min(at);
        }
        if let Some((at, values)) = data_marker {
            let at = clamp_to_cond(&regs, i, at);
            planned.push((at, Op::PreData { obj, values }));
            report.pre_data_inserted += 1;
            first_insert_at = first_insert_at.min(at);
        }
        // PRE_INIT goes just before the earliest injected call.
        insertions.push(Insertion {
            at: first_insert_at,
            ops: vec![Op::PreInit(obj)],
        });
        for (at, op) in planned {
            insertions.push(Insertion { at, ops: vec![op] });
        }
        report.instrumented_writes += 1;
    }

    // Splice insertions (stable by target index, preserving plan order for
    // equal indices).
    insertions.sort_by_key(|ins| ins.at);
    let mut out = Vec::with_capacity(ops.len() + insertions.len());
    let mut ins_iter = insertions.into_iter().peekable();
    for (i, op) in ops.iter().enumerate() {
        while ins_iter.peek().is_some_and(|ins| ins.at == i) {
            out.extend(ins_iter.next().expect("peeked").ops);
        }
        out.push(op.clone());
    }
    for ins in ins_iter {
        out.extend(ins.ops);
    }

    (Program { ops: out }, report)
}

/// Finds the usable `AddrGen` marker for the writeback at `clwb_idx`:
/// the earliest same-function marker covering `line`, not inside a loop the
/// writeback is not in. Returns the insertion index (right after the
/// marker) and the covered line count.
fn find_addr_marker(
    ops: &[Op],
    regs: &[Region],
    clwb_idx: usize,
    line: LineAddr,
) -> Option<(usize, u32)> {
    for j in 0..clwb_idx {
        let Op::AddrGen {
            line: first,
            nlines,
        } = &ops[j]
        else {
            continue;
        };
        if !(first.0..first.0 + *nlines as u64).contains(&line.0) {
            continue;
        }
        if regs[j].func != regs[clwb_idx].func {
            continue; // cross-function: out of scope for the static pass
        }
        if regs[j].loop_depth > regs[clwb_idx].loop_depth {
            continue; // marker is loop-carried
        }
        return Some((j + 1, *nlines));
    }
    None
}

/// Finds the usable `DataGen` marker: the *last* same-function definition of
/// `line`'s data before the writeback (the pass "places a PRE_DATA function
/// between the last two updates on the object"). Returns the one line value
/// destined for `line`.
fn find_data_marker(
    ops: &[Op],
    regs: &[Region],
    clwb_idx: usize,
    line: LineAddr,
) -> Option<(usize, Vec<Line>)> {
    for j in (0..clwb_idx).rev() {
        let Op::DataGen {
            line: first,
            values,
        } = &ops[j]
        else {
            continue;
        };
        let nlines = values.len() as u64;
        if !(first.0..first.0 + nlines).contains(&line.0) {
            continue;
        }
        if regs[j].func != regs[clwb_idx].func {
            continue;
        }
        if regs[j].loop_depth > regs[clwb_idx].loop_depth {
            continue;
        }
        let value = values[(line.0 - first.0) as usize];
        return Some((j + 1, vec![value]));
    }
    None
}

/// Keeps an insertion inside the writeback's conditional region: if the
/// writeback sits under a `CondBegin` and the candidate point is before it,
/// the insertion moves to just inside the conditional (§4.5.1: "our pass
/// conservatively inserts the pre-execution function under the same
/// conditional statement").
fn clamp_to_cond(regs: &[Region], clwb_idx: usize, at: usize) -> usize {
    match regs[clwb_idx].cond_begin {
        Some(cb) if at <= cb => cb + 1,
        _ => at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::ir::ProgramBuilder;

    fn simple_update(in_loop: bool) -> Program {
        let mut b = ProgramBuilder::new();
        b.func("update", |b| {
            b.data_gen(LineAddr(4), vec![Line::splat(1)]);
            b.compute(100);
            b.addr_gen(LineAddr(4), 1);
            b.compute(500);
            let body = |b: &mut ProgramBuilder| {
                b.store(LineAddr(4), Line::splat(1));
                b.clwb(LineAddr(4));
                b.fence();
            };
            if in_loop {
                b.loop_region(body);
            } else {
                body(b);
            }
        });
        b.build()
    }

    #[test]
    fn instruments_simple_update() {
        let (p, r) = instrument(&simple_update(false));
        assert_eq!(r.writes_found, 1);
        assert_eq!(r.instrumented_writes, 1);
        assert_eq!(r.pre_addr_inserted, 1);
        assert_eq!(r.pre_data_inserted, 1);
        assert_eq!(r.coverage(), 1.0);
        // PRE_DATA sits right after the DataGen marker, before the AddrGen.
        let data_pos = p
            .ops
            .iter()
            .position(|o| matches!(o, Op::PreData { .. }))
            .unwrap();
        let addr_pos = p
            .ops
            .iter()
            .position(|o| matches!(o, Op::PreAddr { .. }))
            .unwrap();
        let gen_pos = p
            .ops
            .iter()
            .position(|o| matches!(o, Op::AddrGen { .. }))
            .unwrap();
        assert!(data_pos < gen_pos);
        assert_eq!(addr_pos, gen_pos + 1);
        // PRE_INIT precedes both.
        let init_pos = p
            .ops
            .iter()
            .position(|o| matches!(o, Op::PreInit(_)))
            .unwrap();
        assert!(init_pos < data_pos);
    }

    #[test]
    fn skips_writebacks_in_loops() {
        let (p, r) = instrument(&simple_update(true));
        assert_eq!(r.writes_found, 1);
        assert_eq!(r.instrumented_writes, 0);
        assert_eq!(r.skipped_in_loop, 1);
        assert_eq!(p.pre_op_count(), 0);
    }

    #[test]
    fn skips_without_markers() {
        let mut b = ProgramBuilder::new();
        b.func("noinfo", |b| {
            b.store(LineAddr(1), Line::splat(1));
            b.clwb(LineAddr(1));
            b.fence();
        });
        let (_, r) = instrument(&b.build());
        assert_eq!(r.skipped_no_marker, 1);
        assert_eq!(r.instrumented_writes, 0);
    }

    #[test]
    fn ignores_cross_function_markers() {
        let mut b = ProgramBuilder::new();
        b.func("caller", |b| {
            b.addr_gen(LineAddr(1), 1);
            b.data_gen(LineAddr(1), vec![Line::splat(1)]);
        });
        b.func("callee", |b| {
            b.store(LineAddr(1), Line::splat(1));
            b.clwb(LineAddr(1));
            b.fence();
        });
        let (_, r) = instrument(&b.build());
        assert_eq!(r.skipped_no_marker, 1);
    }

    #[test]
    fn non_blocking_writebacks_ignored() {
        let mut b = ProgramBuilder::new();
        b.func("f", |b| {
            b.addr_gen(LineAddr(1), 1);
            b.store(LineAddr(1), Line::splat(1));
            b.clwb(LineAddr(1)); // never fenced inside the function
        });
        let (_, r) = instrument(&b.build());
        assert_eq!(r.writes_found, 0);
    }

    #[test]
    fn conditional_writeback_keeps_insertion_inside_cond() {
        let mut b = ProgramBuilder::new();
        b.func("f", |b| {
            b.addr_gen(LineAddr(1), 1);
            b.data_gen(LineAddr(1), vec![Line::splat(1)]);
            b.compute(1000);
            b.cond_region(|b| {
                b.store(LineAddr(1), Line::splat(1));
                b.clwb(LineAddr(1));
                b.fence();
            });
        });
        let (p, r) = instrument(&b.build());
        assert_eq!(r.instrumented_writes, 1);
        let cond_pos = p.ops.iter().position(|o| *o == Op::CondBegin).unwrap();
        let pre_pos = p
            .ops
            .iter()
            .position(|o| matches!(o, Op::PreAddr { .. }))
            .unwrap();
        assert!(
            pre_pos > cond_pos,
            "insertion must stay under the conditional"
        );
    }

    #[test]
    fn marker_inside_loop_is_not_hoisted() {
        let mut b = ProgramBuilder::new();
        b.func("f", |b| {
            b.loop_region(|b| {
                b.addr_gen(LineAddr(1), 1);
                b.data_gen(LineAddr(1), vec![Line::splat(1)]);
            });
            b.store(LineAddr(1), Line::splat(1));
            b.clwb(LineAddr(1));
            b.fence();
        });
        let (_, r) = instrument(&b.build());
        assert_eq!(r.skipped_no_marker, 1);
    }

    #[test]
    fn uses_last_data_definition() {
        let mut b = ProgramBuilder::new();
        b.func("f", |b| {
            b.data_gen(LineAddr(1), vec![Line::splat(1)]);
            b.compute(10);
            b.data_gen(LineAddr(1), vec![Line::splat(2)]); // last definition
            b.addr_gen(LineAddr(1), 1);
            b.store(LineAddr(1), Line::splat(2));
            b.clwb(LineAddr(1));
            b.fence();
        });
        let (p, _) = instrument(&b.build());
        let data = p
            .ops
            .iter()
            .find_map(|o| match o {
                Op::PreData { values, .. } => Some(values.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(data, vec![Line::splat(2)]);
    }

    #[test]
    fn multi_line_addr_markers_cover_ranges() {
        let mut b = ProgramBuilder::new();
        b.func("f", |b| {
            b.addr_gen(LineAddr(10), 4);
            b.data_gen(LineAddr(12), vec![Line::splat(9)]);
            b.store(LineAddr(12), Line::splat(9));
            b.clwb(LineAddr(12)); // covered by the 4-line AddrGen
            b.fence();
        });
        let (_, r) = instrument(&b.build());
        assert_eq!(r.instrumented_writes, 1);
        assert_eq!(r.pre_addr_inserted, 1);
    }

    #[test]
    fn fresh_objs_do_not_collide_with_existing() {
        let mut b = ProgramBuilder::new();
        let manual = b.pre_init(); // PreObjId(0)
        b.func("f", |b| {
            b.addr_gen(LineAddr(1), 1);
            b.store(LineAddr(1), Line::splat(1));
            b.clwb(LineAddr(1));
            b.fence();
        });
        let (p, _) = instrument(&b.build());
        let objs: Vec<PreObjId> = p
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::PreInit(obj) => Some(*obj),
                _ => None,
            })
            .collect();
        assert_eq!(objs.len(), 2);
        assert_ne!(objs[0], objs[1]);
        assert!(objs.contains(&manual));
    }
}
