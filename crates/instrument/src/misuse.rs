//! Static misuse detection for the Janus software interface (§6 "Tools for
//! misuse detection").
//!
//! The hardware guarantees correctness regardless of how `PRE_*` calls are
//! placed (§4.4), but misplaced calls waste pre-execution work or leave
//! performance on the table. The paper describes three misuse patterns:
//!
//! 1. **Modifications on the pre-execution object** — the data stored at
//!    the target differs from the hinted data (the IRB will detect the
//!    stale value and re-run data-dependent sub-operations: a slowdown).
//! 2. **Useless pre-execution functions** — a request with no matching
//!    subsequent blocking writeback (the result ages out of the IRB).
//! 3. **Insufficient pre-execution window** — the statically estimated
//!    cycles between the request and the writeback are smaller than the
//!    BMO latency the request is meant to hide.
//!
//! [`detect_misuse`] delegates to the real static-analysis pass in
//! `janus-lint` ([`janus_lint::lint_program`]) and maps its diagnostics
//! back onto the legacy [`Misuse`] shape. The original trace-walking
//! implementation is kept verbatim as [`trace_oracle`]: it interprets the
//! concrete trace against the IRB pairing rules, which makes it an
//! independent differential oracle for the lints — on any program, the
//! static findings for the three paper patterns must *equal* the oracle's
//! (see the property tests in this crate).

use std::collections::HashMap;

use janus_bmo::latency::BmoLatencies;
use janus_bmo::subop::DepGraph;
use janus_core::ir::{Op, PreObjId, Program};
use janus_lint::{LintCode, LintOptions, LintReport};
use janus_nvm::addr::LineAddr;
use janus_nvm::line::Line;
use janus_sim::time::Cycles;

/// One detected misuse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Misuse {
    /// The value written differs from the pre-executed data — the
    /// pre-execution will be invalidated at the memory controller.
    ModifiedAfterPre {
        /// Index of the offending `Store` in the program.
        store_index: usize,
        /// Target line.
        line: LineAddr,
        /// Index of the pre-execution op that hinted stale data.
        pre_index: usize,
    },
    /// A pre-execution request whose result no write ever consumes.
    UselessPre {
        /// Index of the request op.
        pre_index: usize,
        /// The `pre_obj`.
        obj: PreObjId,
        /// Target line, if the request carried one.
        line: Option<LineAddr>,
    },
    /// The window between the request and the writeback is too small for
    /// the BMOs to complete.
    InsufficientWindow {
        /// Index of the request op.
        pre_index: usize,
        /// Index of the consuming `Clwb`.
        clwb_index: usize,
        /// Target line.
        line: LineAddr,
        /// Statically estimated window.
        window: Cycles,
        /// Latency the window must cover for full pre-execution.
        required: Cycles,
    },
}

impl std::fmt::Display for Misuse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Misuse::ModifiedAfterPre {
                store_index, line, ..
            } => write!(
                f,
                "store @{store_index} to {line} overwrites pre-executed data (stale hint)"
            ),
            Misuse::UselessPre { pre_index, obj, .. } => {
                write!(
                    f,
                    "pre-execution @{pre_index} (obj {obj:?}) is never consumed"
                )
            }
            Misuse::InsufficientWindow {
                pre_index,
                line,
                window,
                required,
                ..
            } => write!(
                f,
                "window of pre-execution @{pre_index} for {line} is {window} < required {required}"
            ),
        }
    }
}

/// Analysis summary.
#[derive(Clone, Debug, Default)]
pub struct MisuseReport {
    /// All findings, in program order.
    pub findings: Vec<Misuse>,
    /// Pre-execution requests analyzed (line granularity).
    pub requests: usize,
    /// Requests consumed by a write with a full window.
    pub well_placed: usize,
}

impl MisuseReport {
    /// Findings of the stale-data kind.
    pub fn stale_hints(&self) -> usize {
        self.findings
            .iter()
            .filter(|m| matches!(m, Misuse::ModifiedAfterPre { .. }))
            .count()
    }

    /// Findings of the useless kind.
    pub fn useless(&self) -> usize {
        self.findings
            .iter()
            .filter(|m| matches!(m, Misuse::UselessPre { .. }))
            .count()
    }

    /// Findings of the short-window kind.
    pub fn short_windows(&self) -> usize {
        self.findings
            .iter()
            .filter(|m| matches!(m, Misuse::InsufficientWindow { .. }))
            .count()
    }
}

/// Runs the analyzer with the paper's default BMO latencies.
pub fn detect_misuse(program: &Program) -> MisuseReport {
    detect_misuse_with(program, &BmoLatencies::paper())
}

/// Runs the analyzer against a specific BMO configuration by delegating to
/// the `janus-lint` static-analysis pass and projecting its diagnostics
/// onto the three §6 misuse patterns (the additional lint codes —
/// redundant requests, IRB pressure, persist ordering — are reported only
/// through `janus-lint` itself).
pub fn detect_misuse_with(program: &Program, lat: &BmoLatencies) -> MisuseReport {
    let opts = LintOptions::with_latencies(*lat);
    project_lint_report(&janus_lint::lint_program(program, &opts))
}

/// Maps a lint report onto the legacy [`MisuseReport`] shape.
fn project_lint_report(lint: &LintReport) -> MisuseReport {
    let mut report = MisuseReport {
        findings: Vec::new(),
        requests: lint.requests,
        well_placed: lint.well_placed,
    };
    for d in &lint.diagnostics {
        let line = d.line.map(LineAddr);
        let obj = d.obj.map(PreObjId);
        match d.code {
            LintCode::ModifiedAfterPre => report.findings.push(Misuse::ModifiedAfterPre {
                store_index: d.at,
                line: line.expect("stale-hint diagnostics carry a line"),
                pre_index: d.other.expect("stale-hint diagnostics carry the request"),
            }),
            LintCode::UselessPre => report.findings.push(Misuse::UselessPre {
                pre_index: d.at,
                obj: obj.expect("useless-pre diagnostics carry the obj"),
                line,
            }),
            LintCode::InsufficientWindow => {
                let (window, required) = d.window.expect("window diagnostics carry cycles");
                report.findings.push(Misuse::InsufficientWindow {
                    pre_index: d.other.expect("window diagnostics carry the request"),
                    clwb_index: d.at,
                    line: line.expect("window diagnostics carry a line"),
                    window: Cycles(window),
                    required: Cycles(required),
                });
            }
            _ => {} // extended lints have no legacy equivalent
        }
    }
    report
}

/// The result of differentially checking a `janus-lint --fix` rewrite
/// against the trace-walking oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixVerification {
    /// The fixed program's `Store`/`Load` stream is byte-identical to the
    /// original's — fixes only touch `PRE_*` ops and persist primitives,
    /// never the workload's semantics.
    pub stream_preserved: bool,
    /// Oracle findings on the original program.
    pub oracle_before: usize,
    /// Oracle findings on the fixed program.
    pub oracle_after: usize,
}

impl FixVerification {
    /// Whether the fix is semantics-preserving and never regresses the
    /// oracle. (The lint's window is the *active stack's* critical path
    /// while the oracle always charges the paper trio, so a legitimate fix
    /// under `--bmos` can shift an oracle finding between kinds — the
    /// total, though, must never grow.)
    pub fn ok(&self) -> bool {
        self.stream_preserved && self.oracle_after <= self.oracle_before
    }

    /// Whether the fixed program is oracle-clean (zero dynamic misuses) —
    /// guaranteed by the fix engine when linting with paper-default
    /// options, where the lint window equals the oracle window.
    pub fn clean(&self) -> bool {
        self.oracle_after == 0
    }
}

/// Differentially checks a fix rewrite with the paper's default latencies.
pub fn verify_fix(original: &Program, fixed: &Program) -> FixVerification {
    verify_fix_with(original, fixed, &BmoLatencies::paper())
}

/// Differentially checks a fix rewrite: the `Store`/`Load` stream must be
/// preserved exactly, and the trace oracle's finding count must not grow.
pub fn verify_fix_with(original: &Program, fixed: &Program, lat: &BmoLatencies) -> FixVerification {
    fn stream(p: &Program) -> Vec<&Op> {
        p.ops
            .iter()
            .filter(|o| matches!(o, Op::Store { .. } | Op::Load(_)))
            .collect()
    }
    FixVerification {
        stream_preserved: stream(original) == stream(fixed),
        oracle_before: trace_oracle_with(original, lat).findings.len(),
        oracle_after: trace_oracle_with(fixed, lat).findings.len(),
    }
}

#[derive(Clone, Debug)]
struct Hint {
    pre_index: usize,
    obj: PreObjId,
    data: Option<Line>,
    issue_cost: Cycles,
    flagged_stale: bool,
}

/// Static per-op cost estimate used for window calculations. Fences are
/// charged the BMO critical path — a fence in crash-consistent code waits
/// for at least one write's persistence, so this is a conservative *lower*
/// bound on real fence time (and matches the lint's accounting, keeping
/// the oracle exactly comparable).
fn op_cost(op: &Op, fence: Cycles) -> Cycles {
    match op {
        Op::Compute(c) => Cycles(*c as u64),
        Op::Load(_) => Cycles(8),
        Op::Store { .. } => Cycles(4),
        Op::Clwb(_) => Cycles(4),
        Op::Fence => fence,
        op if op.is_pre() => Cycles(6),
        _ => Cycles::ZERO,
    }
}

/// Runs the trace-walking oracle with the paper's default BMO latencies.
pub fn trace_oracle(program: &Program) -> MisuseReport {
    trace_oracle_with(program, &BmoLatencies::paper())
}

/// The original trace-walking misuse detector, kept as an independent
/// differential oracle for the static lints: it abstractly interprets the
/// concrete trace against the IRB's pairing rules (requests register hints
/// per line, `PRE_DATA` binds to address-only hints of the same `pre_obj`,
/// stores compare values, `clwb`s consume and check windows).
pub fn trace_oracle_with(program: &Program, lat: &BmoLatencies) -> MisuseReport {
    let required = DepGraph::standard(lat).critical_path();
    let mut report = MisuseReport::default();
    // Active hints by target line; data-only hints by obj until bound.
    let mut by_line: HashMap<LineAddr, Hint> = HashMap::new();
    let mut unbound: HashMap<PreObjId, Vec<Hint>> = HashMap::new();
    let mut elapsed = Cycles::ZERO;

    let register = |by_line: &mut HashMap<LineAddr, Hint>,
                    report: &mut MisuseReport,
                    line: LineAddr,
                    hint: Hint| {
        report.requests += 1;
        if let Some(old) = by_line.insert(line, hint) {
            report.findings.push(Misuse::UselessPre {
                pre_index: old.pre_index,
                obj: old.obj,
                line: Some(line),
            });
        }
    };

    for (i, op) in program.ops.iter().enumerate() {
        match op {
            Op::PreAddr { obj, line, nlines } | Op::PreAddrBuf { obj, line, nlines } => {
                // Bind pending data-only hints of the same obj first.
                let mut pending = unbound.remove(obj).unwrap_or_default();
                for k in 0..*nlines as u64 {
                    let target = line.offset(k);
                    let hint = if pending.is_empty() {
                        Hint {
                            pre_index: i,
                            obj: *obj,
                            data: None,
                            issue_cost: elapsed,
                            flagged_stale: false,
                        }
                    } else {
                        let mut h = pending.remove(0);
                        h.pre_index = h.pre_index.min(i);
                        h
                    };
                    register(&mut by_line, &mut report, target, hint);
                }
                if !pending.is_empty() {
                    unbound.insert(*obj, pending);
                }
            }
            Op::PreData { obj, values } | Op::PreDataBuf { obj, values } => {
                for v in values {
                    // Attach to an existing address-only hint of the same
                    // pre_obj (the hardware pairs them in the IRB); queue
                    // as unbound otherwise.
                    if let Some(h) = by_line
                        .values_mut()
                        .find(|h| h.obj == *obj && h.data.is_none())
                    {
                        h.data = Some(*v);
                        continue;
                    }
                    unbound.entry(*obj).or_default().push(Hint {
                        pre_index: i,
                        obj: *obj,
                        data: Some(*v),
                        issue_cost: elapsed,
                        flagged_stale: false,
                    });
                }
            }
            Op::PreBoth { obj, line, values } | Op::PreBothBuf { obj, line, values } => {
                for (k, v) in values.iter().enumerate() {
                    register(
                        &mut by_line,
                        &mut report,
                        line.offset(k as u64),
                        Hint {
                            pre_index: i,
                            obj: *obj,
                            data: Some(*v),
                            issue_cost: elapsed,
                            flagged_stale: false,
                        },
                    );
                }
            }
            Op::Store { line, value } => {
                if let Some(h) = by_line.get_mut(line) {
                    if let Some(d) = h.data {
                        if d != *value && !h.flagged_stale {
                            h.flagged_stale = true;
                            report.findings.push(Misuse::ModifiedAfterPre {
                                store_index: i,
                                line: *line,
                                pre_index: h.pre_index,
                            });
                        }
                    }
                }
            }
            Op::Clwb(line) => {
                if let Some(h) = by_line.remove(line) {
                    let window = elapsed.saturating_sub(h.issue_cost);
                    if window < required && !h.flagged_stale {
                        report.findings.push(Misuse::InsufficientWindow {
                            pre_index: h.pre_index,
                            clwb_index: i,
                            line: *line,
                            window,
                            required,
                        });
                    } else if !h.flagged_stale {
                        report.well_placed += 1;
                    }
                }
            }
            _ => {}
        }
        elapsed += op_cost(op, required);
    }

    // Leftovers are useless.
    let mut leftovers: Vec<(LineAddr, Hint)> = by_line.into_iter().collect();
    leftovers.sort_by_key(|(line, _)| line.0);
    for (line, h) in leftovers {
        report.findings.push(Misuse::UselessPre {
            pre_index: h.pre_index,
            obj: h.obj,
            line: Some(line),
        });
    }
    let mut unbound: Vec<(PreObjId, Vec<Hint>)> = unbound.into_iter().collect();
    unbound.sort_by_key(|(obj, _)| obj.0);
    for (obj, hints) in unbound {
        for h in hints {
            report.findings.push(Misuse::UselessPre {
                pre_index: h.pre_index,
                obj,
                line: None,
            });
        }
    }
    report.findings.sort_by_key(|m| match m {
        Misuse::ModifiedAfterPre { store_index, .. } => *store_index,
        Misuse::UselessPre { pre_index, .. } => *pre_index,
        Misuse::InsufficientWindow { clwb_index, .. } => *clwb_index,
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::ir::ProgramBuilder;

    fn both_ways(p: &Program) -> (MisuseReport, MisuseReport) {
        (detect_misuse(p), trace_oracle(p))
    }

    #[test]
    fn clean_program_has_no_findings() {
        let mut b = ProgramBuilder::new();
        let obj = b.pre_init();
        b.pre_both(obj, LineAddr(1), vec![Line::splat(1)]);
        b.compute(5000); // ample window
        b.store(LineAddr(1), Line::splat(1));
        b.clwb(LineAddr(1));
        b.fence();
        let (r, oracle) = both_ways(&b.build());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.well_placed, 1);
        assert_eq!(r.requests, 1);
        assert_eq!(r.findings, oracle.findings);
    }

    #[test]
    fn detects_stale_data() {
        let mut b = ProgramBuilder::new();
        let obj = b.pre_init();
        b.pre_both(obj, LineAddr(1), vec![Line::splat(1)]);
        b.compute(5000);
        b.store(LineAddr(1), Line::splat(2)); // differs from hint
        b.clwb(LineAddr(1));
        b.fence();
        let (r, oracle) = both_ways(&b.build());
        assert_eq!(r.stale_hints(), 1);
        assert_eq!(r.well_placed, 0);
        assert_eq!(r.findings, oracle.findings);
    }

    #[test]
    fn detects_useless_pre() {
        let mut b = ProgramBuilder::new();
        let obj = b.pre_init();
        b.pre_both(obj, LineAddr(1), vec![Line::splat(1)]);
        b.compute(100);
        // no write at all
        let (r, oracle) = both_ways(&b.build());
        assert_eq!(r.useless(), 1);
        assert_eq!(r.findings, oracle.findings);
    }

    #[test]
    fn detects_insufficient_window() {
        let mut b = ProgramBuilder::new();
        let obj = b.pre_init();
        b.pre_both(obj, LineAddr(1), vec![Line::splat(1)]);
        b.compute(100); // far less than the ~2764-cycle BMO latency
        b.store(LineAddr(1), Line::splat(1));
        b.clwb(LineAddr(1));
        b.fence();
        let (r, oracle) = both_ways(&b.build());
        assert_eq!(r.short_windows(), 1);
        match &r.findings[0] {
            Misuse::InsufficientWindow {
                window, required, ..
            } => {
                assert!(window < required);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(r.findings, oracle.findings);
    }

    #[test]
    fn detects_double_pre_as_useless() {
        let mut b = ProgramBuilder::new();
        let obj = b.pre_init();
        b.pre_both(obj, LineAddr(1), vec![Line::splat(1)]);
        let obj2 = b.pre_init();
        b.pre_both(obj2, LineAddr(1), vec![Line::splat(1)]); // shadows the first
        b.compute(5000);
        b.store(LineAddr(1), Line::splat(1));
        b.clwb(LineAddr(1));
        b.fence();
        let (r, oracle) = both_ways(&b.build());
        assert_eq!(r.useless(), 1);
        assert_eq!(r.well_placed, 1);
        assert_eq!(r.findings, oracle.findings);
    }

    #[test]
    fn data_then_addr_binds_like_hardware() {
        let mut b = ProgramBuilder::new();
        let obj = b.pre_init();
        b.pre_data(obj, vec![Line::splat(7)]);
        b.compute(3000);
        b.pre_addr(obj, LineAddr(4), 1);
        b.compute(3000);
        b.store(LineAddr(4), Line::splat(7));
        b.clwb(LineAddr(4));
        b.fence();
        let (r, oracle) = both_ways(&b.build());
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.well_placed, 1);
        assert_eq!(r.findings, oracle.findings);
    }

    #[test]
    fn unbound_data_hint_is_useless() {
        let mut b = ProgramBuilder::new();
        let obj = b.pre_init();
        b.pre_data(obj, vec![Line::splat(7)]);
        b.compute(100);
        let (r, oracle) = both_ways(&b.build());
        assert_eq!(r.useless(), 1);
        assert_eq!(r.findings, oracle.findings);
    }

    #[test]
    fn display_is_informative() {
        let m = Misuse::UselessPre {
            pre_index: 3,
            obj: PreObjId(1),
            line: None,
        };
        assert!(m.to_string().contains("never consumed"));
    }
}
