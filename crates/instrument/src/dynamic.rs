//! Profile-guided ("dynamic") instrumentation — the paper's §6 future work.
//!
//! "Utilizing dynamic analysis techniques can provide runtime information
//! and enable more optimization opportunities, such as pre-executing BMOs
//! outside of its function or outside its loop."
//!
//! The static pass (§4.5) must prove placements safe at compile time, so it
//! skips writebacks in loops and never crosses function boundaries. A
//! profile-guided optimizer observes a concrete execution — which is
//! exactly what our trace IR is — and can therefore instrument *every*
//! blocking writeback at its true earliest input point:
//!
//! * loop-resident writebacks are instrumented per iteration (the profile
//!   resolves the loop-carried addresses the static pass cannot);
//! * markers are matched across function boundaries;
//! * per-`clwb` requests are still narrowed to one line, as in the static
//!   pass.
//!
//! Correctness is unaffected either way (the IRB validates everything);
//! the profile only changes how much latency is hidden.

use janus_core::ir::{Op, PreObjId, Program};
use janus_nvm::addr::LineAddr;
use janus_nvm::line::Line;

/// Statistics of a dynamic instrumentation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DynamicReport {
    /// Blocking writebacks found.
    pub writes_found: u64,
    /// Writebacks instrumented.
    pub instrumented_writes: u64,
    /// Writebacks in loops that the static pass would have skipped but the
    /// profile-guided pass handled.
    pub loop_recoveries: u64,
    /// Writebacks with no marker anywhere in the profile.
    pub skipped_no_marker: u64,
}

/// Runs the profile-guided pass over a trace.
pub fn instrument_dynamic(program: &Program) -> (Program, DynamicReport) {
    let ops = &program.ops;
    let mut report = DynamicReport::default();
    let mut next_obj: u32 = ops
        .iter()
        .filter_map(|o| match o {
            Op::PreInit(PreObjId(n)) => Some(n + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);

    // Loop-region depth per op (only to count recoveries).
    let mut depth = 0i32;
    let depths: Vec<i32> = ops
        .iter()
        .map(|op| {
            match op {
                Op::LoopBegin => depth += 1,
                Op::LoopEnd => depth -= 1,
                _ => {}
            }
            depth
        })
        .collect();

    // Last marker position per line, swept forward; insertion happens right
    // after the marker that most recently defined the write's inputs.
    let mut insertions: Vec<(usize, Vec<Op>)> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let Op::Clwb(line) = op else { continue };
        let line = *line;
        if !is_blocking(ops, i) {
            continue;
        }
        report.writes_found += 1;

        let addr_at = last_addr_marker(ops, i, line);
        let data_at = last_data_marker(ops, i, line);
        if addr_at.is_none() && data_at.is_none() {
            report.skipped_no_marker += 1;
            continue;
        }
        report.instrumented_writes += 1;
        if depths[i] > 0 {
            report.loop_recoveries += 1;
        }
        let obj = PreObjId(next_obj);
        next_obj += 1;
        let first = addr_at
            .map(|(at, _)| at)
            .into_iter()
            .chain(data_at.as_ref().map(|(at, _)| *at))
            .min()
            .expect("at least one marker");
        insertions.push((first, vec![Op::PreInit(obj)]));
        if let Some((at, _)) = addr_at {
            insertions.push((
                at,
                vec![Op::PreAddr {
                    obj,
                    line,
                    nlines: 1,
                }],
            ));
        }
        if let Some((at, value)) = data_at {
            insertions.push((
                at,
                vec![Op::PreData {
                    obj,
                    values: vec![value],
                }],
            ));
        }
    }

    insertions.sort_by_key(|(at, _)| *at);
    let mut out = Vec::with_capacity(ops.len() + insertions.len());
    let mut it = insertions.into_iter().peekable();
    for (i, op) in ops.iter().enumerate() {
        while it.peek().is_some_and(|(at, _)| *at == i) {
            out.extend(it.next().expect("peeked").1);
        }
        out.push(op.clone());
    }
    for (_, rest) in it {
        out.extend(rest);
    }
    (Program { ops: out }, report)
}

fn is_blocking(ops: &[Op], clwb_idx: usize) -> bool {
    ops[clwb_idx + 1..]
        .iter()
        .take(64)
        .any(|o| matches!(o, Op::Fence))
}

/// Insertion point right after the last `AddrGen` covering `line` before
/// the writeback (profiles use the freshest definition).
fn last_addr_marker(ops: &[Op], clwb_idx: usize, line: LineAddr) -> Option<(usize, ())> {
    for j in (0..clwb_idx).rev() {
        if let Op::AddrGen {
            line: first,
            nlines,
        } = &ops[j]
        {
            if (first.0..first.0 + *nlines as u64).contains(&line.0) {
                return Some((j + 1, ()));
            }
        }
    }
    None
}

fn last_data_marker(ops: &[Op], clwb_idx: usize, line: LineAddr) -> Option<(usize, Line)> {
    for j in (0..clwb_idx).rev() {
        if let Op::DataGen {
            line: first,
            values,
        } = &ops[j]
        {
            let n = values.len() as u64;
            if (first.0..first.0 + n).contains(&line.0) {
                return Some((j + 1, values[(line.0 - first.0) as usize]));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use janus_core::ir::ProgramBuilder;

    fn loop_workload() -> Program {
        let mut b = ProgramBuilder::new();
        b.func("queue_like", |b| {
            b.loop_region(|b| {
                b.addr_gen(LineAddr(1), 1);
                b.data_gen(LineAddr(1), vec![Line::splat(1)]);
                b.compute(2000);
                b.store(LineAddr(1), Line::splat(1));
                b.clwb(LineAddr(1));
                b.fence();
            });
        });
        b.build()
    }

    #[test]
    fn recovers_loop_resident_writebacks() {
        let p = loop_workload();
        let (stat, stat_report) = crate::instrument(&p);
        assert_eq!(stat_report.instrumented_writes, 0, "static must skip");
        assert_eq!(stat.pre_op_count(), 0);

        let (dynamic, report) = instrument_dynamic(&p);
        assert_eq!(report.instrumented_writes, 1);
        assert_eq!(report.loop_recoveries, 1);
        assert!(dynamic.pre_op_count() > 0);
    }

    #[test]
    fn crosses_function_boundaries() {
        let mut b = ProgramBuilder::new();
        b.func("caller", |b| {
            b.addr_gen(LineAddr(4), 1);
            b.data_gen(LineAddr(4), vec![Line::splat(2)]);
        });
        b.func("callee", |b| {
            b.compute(3000);
            b.store(LineAddr(4), Line::splat(2));
            b.clwb(LineAddr(4));
            b.fence();
        });
        let p = b.build();
        let (_, stat) = crate::instrument(&p);
        assert_eq!(stat.instrumented_writes, 0);
        let (out, dynr) = instrument_dynamic(&p);
        assert_eq!(dynr.instrumented_writes, 1);
        // The insertion sits in the caller, before the callee begins.
        let pre = out
            .ops
            .iter()
            .position(|o| matches!(o, Op::PreAddr { .. }))
            .unwrap();
        let callee = out
            .ops
            .iter()
            .position(|o| matches!(o, Op::FuncBegin("callee")))
            .unwrap();
        assert!(pre < callee);
    }

    #[test]
    fn no_marker_still_skipped() {
        let mut b = ProgramBuilder::new();
        b.store(LineAddr(9), Line::splat(1));
        b.clwb(LineAddr(9));
        b.fence();
        let (_, r) = instrument_dynamic(&b.build());
        assert_eq!(r.skipped_no_marker, 1);
    }

    #[test]
    fn preserves_non_pre_ops() {
        let p = loop_workload();
        let (out, _) = instrument_dynamic(&p);
        let orig: Vec<&Op> = p.ops.iter().filter(|o| !o.is_pre()).collect();
        let kept: Vec<&Op> = out.ops.iter().filter(|o| !o.is_pre()).collect();
        assert_eq!(orig, kept);
    }
}
