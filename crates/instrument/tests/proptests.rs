//! Property-based tests for the automated compiler pass: on arbitrary
//! generated programs, the pass output must be well-formed and preserve the
//! program's observable behaviour (ported from proptest to janus-check).

use janus_check::{forall_cfg, gen, Config, Gen};
use janus_core::ir::{Op, PreObjId, Program, ProgramBuilder};
use janus_instrument::instrument;
use janus_nvm::addr::LineAddr;
use janus_nvm::line::Line;

/// A little grammar of persistence routines: each routine optionally emits
/// provenance markers, maybe inside loop/cond regions, then a persist
/// sequence.
#[derive(Clone, Debug)]
struct Routine {
    line: u64,
    value: u8,
    addr_marker: bool,
    data_marker: bool,
    in_loop: bool,
    in_cond: bool,
    compute: u32,
}

fn arb_routine() -> Gen<Routine> {
    gen::tuple7(
        &gen::range_u64(0..32),
        &gen::any_u8(),
        &gen::any_bool(),
        &gen::any_bool(),
        &gen::any_bool(),
        &gen::any_bool(),
        &gen::range_u32(0..5_000),
    )
    .map(
        |(line, value, addr_marker, data_marker, in_loop, in_cond, compute)| Routine {
            line: *line,
            value: *value,
            addr_marker: *addr_marker,
            data_marker: *data_marker,
            in_loop: *in_loop,
            in_cond: *in_cond,
            compute: *compute,
        },
    )
}

fn arb_routines() -> Gen<Vec<Routine>> {
    gen::vec_of(&arb_routine(), 1..12)
}

fn build(routines: &[Routine]) -> Program {
    let mut b = ProgramBuilder::new();
    for r in routines {
        b.func("routine", |b| {
            let value = Line::splat(r.value);
            let body = |b: &mut ProgramBuilder| {
                if r.addr_marker {
                    b.addr_gen(LineAddr(r.line), 1);
                }
                if r.data_marker {
                    b.data_gen(LineAddr(r.line), vec![value]);
                }
                b.compute(r.compute);
                let write = |b: &mut ProgramBuilder| {
                    b.store(LineAddr(r.line), value);
                    b.clwb(LineAddr(r.line));
                    b.fence();
                };
                if r.in_cond {
                    b.cond_region(write);
                } else {
                    write(b);
                }
            };
            if r.in_loop {
                b.loop_region(body);
            } else {
                body(b);
            }
        });
    }
    b.build()
}

/// Pass output is well-formed: balanced regions, unique pre_objs, every
/// inserted PRE op preceded by its PRE_INIT, and non-pre ops unchanged
/// in order.
#[test]
fn pass_output_is_well_formed() {
    forall_cfg(&Config::with_cases(64), &arb_routines(), |routines| {
        let input = build(routines);
        let (output, report) = instrument(&input);

        // Non-pre ops preserved in order.
        let orig: Vec<&Op> = input.ops.iter().filter(|o| !o.is_pre()).collect();
        let kept: Vec<&Op> = output.ops.iter().filter(|o| !o.is_pre()).collect();
        assert_eq!(orig, kept);

        // Regions stay balanced.
        let mut loops = 0i32;
        let mut conds = 0i32;
        let mut funcs = 0i32;
        for op in &output.ops {
            match op {
                Op::LoopBegin => loops += 1,
                Op::LoopEnd => loops -= 1,
                Op::CondBegin => conds += 1,
                Op::CondEnd => conds -= 1,
                Op::FuncBegin(_) => funcs += 1,
                Op::FuncEnd => funcs -= 1,
                _ => {}
            }
            assert!(loops >= 0 && conds >= 0 && funcs >= 0);
        }
        assert_eq!((loops, conds, funcs), (0, 0, 0));

        // Every PRE op's obj was PRE_INITed earlier; objs unique.
        let mut seen = std::collections::HashSet::new();
        let mut inited = std::collections::HashSet::new();
        for op in &output.ops {
            match op {
                Op::PreInit(obj) => {
                    assert!(seen.insert(*obj), "duplicate obj {obj:?}");
                    inited.insert(*obj);
                }
                Op::PreAddr { obj, .. } | Op::PreData { obj, .. } | Op::PreBoth { obj, .. } => {
                    assert!(inited.contains(obj), "uninitialized obj {obj:?}");
                }
                _ => {}
            }
        }

        // Report accounting is consistent.
        assert_eq!(
            report.writes_found,
            report.instrumented_writes + report.skipped_in_loop + report.skipped_no_marker
        );
        // Loop-wrapped writebacks are never instrumented.
        if routines.iter().all(|r| r.in_loop) {
            assert_eq!(report.instrumented_writes, 0);
        }
    });
}

/// Inserted PRE ops never sit inside a loop region (the §4.5.2 rule)
/// and never carry an obj used by two different writebacks.
#[test]
fn insertions_respect_loop_regions() {
    forall_cfg(&Config::with_cases(64), &arb_routines(), |routines| {
        let input = build(routines);
        let (output, _) = instrument(&input);
        let mut depth = 0;
        let mut objs_at: std::collections::HashMap<PreObjId, usize> =
            std::collections::HashMap::new();
        for op in &output.ops {
            match op {
                Op::LoopBegin => depth += 1,
                Op::LoopEnd => depth -= 1,
                o if o.is_pre() => {
                    assert_eq!(depth, 0, "pass inserted {o:?} inside a loop");
                    if let Op::PreAddr { obj, .. } | Op::PreData { obj, .. } = o {
                        *objs_at.entry(*obj).or_insert(0) += 1;
                        assert!(objs_at[obj] <= 2, "obj reused too often");
                    }
                }
                _ => {}
            }
        }
    });
}
