//! Property tests for the `janus-lint --fix` engine, driven by the same
//! adversarially mis-instrumented program generator the lint-differential
//! suite uses. The engine's contract, checked on every generated program:
//!
//! * the strict-reduction gate holds (no lint code's count ever rises and
//!   the total never grows);
//! * the fixpoint terminates within its well-founded bound and leaves the
//!   three §6 misuse patterns extinct;
//! * `--fix` is idempotent — fixing a fixed program changes nothing;
//! * the rewrite preserves the `Store`/`Load` stream and the fixed program
//!   passes the dynamic trace oracle with zero misuses.

use janus_check::{forall_cfg, gen, Config, Gen};
use janus_core::ir::{Program, ProgramBuilder};
use janus_instrument::misuse::verify_fix;
use janus_lint::{fix_default, seed_stale_hint, LintCode};
use janus_nvm::addr::LineAddr;
use janus_nvm::line::Line;

/// How a routine places (or misplaces) its pre-execution request.
#[derive(Clone, Copy, Debug)]
enum PreKind {
    None,
    Both,
    Split,
    Stale,
    DataOnly,
    Shadowed,
}

#[derive(Clone, Debug)]
struct MisRoutine {
    line: u64,
    value: u8,
    kind: PreKind,
    compute: u32,
    consume: bool,
}

fn arb_misroutine() -> Gen<MisRoutine> {
    gen::tuple5(
        &gen::range_u64(0..8),
        &gen::any_u8(),
        &gen::range_u32(0..6),
        &gen::range_u32(0..6_000),
        &gen::any_bool(),
    )
    .map(|(line, value, kind, compute, consume)| MisRoutine {
        line: *line,
        value: *value,
        kind: match kind {
            0 => PreKind::None,
            1 => PreKind::Both,
            2 => PreKind::Split,
            3 => PreKind::Stale,
            4 => PreKind::DataOnly,
            _ => PreKind::Shadowed,
        },
        compute: *compute,
        consume: *consume,
    })
}

fn arb_misroutines() -> Gen<Vec<MisRoutine>> {
    gen::vec_of(&arb_misroutine(), 1..10)
}

/// Builds a hand-instrumented (possibly mis-instrumented) program.
fn build(routines: &[MisRoutine]) -> Program {
    let mut b = ProgramBuilder::new();
    for r in routines {
        b.func("routine", |b| {
            let hinted = Line::splat(r.value);
            let stored = match r.kind {
                PreKind::Stale => Line::splat(r.value.wrapping_add(1)),
                _ => hinted,
            };
            match r.kind {
                PreKind::None => {}
                PreKind::Both | PreKind::Stale => {
                    let obj = b.pre_init();
                    b.pre_both(obj, LineAddr(r.line), vec![hinted]);
                }
                PreKind::Split => {
                    let obj = b.pre_init();
                    b.pre_addr(obj, LineAddr(r.line), 1);
                    b.pre_data(obj, vec![hinted]);
                }
                PreKind::DataOnly => {
                    let obj = b.pre_init();
                    b.pre_data(obj, vec![hinted]);
                }
                PreKind::Shadowed => {
                    let obj = b.pre_init();
                    b.pre_both(obj, LineAddr(r.line), vec![hinted]);
                    let obj2 = b.pre_init();
                    b.pre_both(obj2, LineAddr(r.line), vec![hinted]);
                }
            }
            b.compute(r.compute);
            if r.consume {
                b.store(LineAddr(r.line), stored);
                b.clwb(LineAddr(r.line));
                b.fence();
            }
        });
    }
    b.build()
}

/// Every lint code a program report can carry.
const PROGRAM_CODES: [LintCode; 6] = [
    LintCode::ModifiedAfterPre,
    LintCode::UselessPre,
    LintCode::InsufficientWindow,
    LintCode::RedundantPre,
    LintCode::IrbPressure,
    LintCode::PersistOrdering,
];

/// The strict-reduction gate holds over the whole run, the fixpoint stays
/// inside its well-founded bound, and no §6 misuse survives the fix.
#[test]
fn fix_reduces_and_clears_the_misuse_patterns() {
    forall_cfg(&Config::with_cases(72), &arb_misroutines(), |routines| {
        let p = build(routines);
        let outcome = fix_default(&p);
        assert!(
            outcome.after.diagnostics.len() <= outcome.before.diagnostics.len(),
            "total diagnostics grew: {routines:?}"
        );
        for c in PROGRAM_CODES {
            assert!(
                outcome.after.count(c) <= outcome.before.count(c),
                "{c:?} regressed on {routines:?}"
            );
        }
        for c in [
            LintCode::ModifiedAfterPre,
            LintCode::UselessPre,
            LintCode::InsufficientWindow,
        ] {
            assert_eq!(
                outcome.after.count(c),
                0,
                "{c:?} survived the fix on {routines:?}: {:?}",
                outcome.after.diagnostics
            );
        }
        // Termination measure: one accepted fix per iteration, each
        // strictly decreasing the diagnostic count.
        assert!(
            outcome.iterations <= outcome.before.diagnostics.len() + 1,
            "fixpoint overran its bound: {} iterations for {} diagnostics",
            outcome.iterations,
            outcome.before.diagnostics.len()
        );
    });
}

/// Fixing a fixed program is a no-op, byte for byte.
#[test]
fn fix_is_idempotent_on_adversarial_programs() {
    forall_cfg(&Config::with_cases(48), &arb_misroutines(), |routines| {
        let outcome = fix_default(&build(routines));
        let again = fix_default(&outcome.program);
        assert!(
            !again.changed(),
            "second fix pass changed the program: {:?} on {routines:?}",
            again.applied
        );
        assert_eq!(again.program, outcome.program);
    });
}

/// Differential oracle: the fixed program preserves the `Store`/`Load`
/// stream and replays through the dynamic trace oracle with zero misuses.
#[test]
fn fixed_programs_pass_the_trace_oracle() {
    forall_cfg(&Config::with_cases(48), &arb_misroutines(), |routines| {
        let p = build(routines);
        let outcome = fix_default(&p);
        let v = verify_fix(&p, &outcome.program);
        assert!(v.ok(), "stream/oracle regression on {routines:?}: {v:?}");
        assert!(
            v.clean(),
            "dynamic misuses survive the fix on {routines:?}: {v:?}"
        );
    });
}

/// The canonical seeded misuse is always repaired, on any generated
/// uninstrumented store stream.
#[test]
fn seeded_misuse_is_always_repaired() {
    forall_cfg(&Config::with_cases(48), &arb_misroutines(), |routines| {
        let mut b = ProgramBuilder::new();
        for r in routines {
            b.func("routine", |b| {
                b.compute(r.compute);
                b.store(LineAddr(r.line), Line::splat(r.value));
                b.clwb(LineAddr(r.line));
                b.fence();
            });
        }
        let mut seeded = b.build();
        seed_stale_hint(&mut seeded);
        let outcome = fix_default(&seeded);
        assert_eq!(
            outcome.after.errors(),
            0,
            "seeded program not repaired: {routines:?}"
        );
        let v = verify_fix(&seeded, &outcome.program);
        assert!(v.ok() && v.clean(), "{routines:?}: {v:?}");
    });
}
