//! Differential tests between the static misuse lints (`janus-lint`, which
//! [`janus_instrument::misuse`] now delegates to) and the original
//! trace-walking checker, kept as [`trace_oracle_with`]. On any program —
//! including adversarially mis-instrumented ones — the static findings for
//! the three §6 misuse patterns must *equal* the oracle's, and a
//! lint-clean program must produce zero dynamic misuses.

use janus_bmo::latency::BmoLatencies;
use janus_check::{forall_cfg, gen, Config, Gen};
use janus_core::ir::{Program, ProgramBuilder};
use janus_instrument::instrument;
use janus_instrument::misuse::{detect_misuse_with, trace_oracle_with};
use janus_lint::{auto_place, lint_default};
use janus_nvm::addr::LineAddr;
use janus_nvm::line::Line;

/// How a routine places (or misplaces) its pre-execution request.
#[derive(Clone, Copy, Debug)]
enum PreKind {
    /// No request at all.
    None,
    /// A well-formed `PRE_BOTH`.
    Both,
    /// Split `PRE_ADDR` + `PRE_DATA`.
    Split,
    /// `PRE_BOTH` hinting a value the store then changes (stale).
    Stale,
    /// `PRE_DATA` with no address ever bound (unbound — useless).
    DataOnly,
    /// Two `PRE_BOTH`s on the same line (the first is shadowed).
    Shadowed,
}

#[derive(Clone, Debug)]
struct MisRoutine {
    line: u64,
    value: u8,
    kind: PreKind,
    compute: u32,
    consume: bool,
}

fn arb_misroutine() -> Gen<MisRoutine> {
    gen::tuple5(
        &gen::range_u64(0..8),
        &gen::any_u8(),
        &gen::range_u32(0..6),
        &gen::range_u32(0..6_000),
        &gen::any_bool(),
    )
    .map(|(line, value, kind, compute, consume)| MisRoutine {
        line: *line,
        value: *value,
        kind: match kind {
            0 => PreKind::None,
            1 => PreKind::Both,
            2 => PreKind::Split,
            3 => PreKind::Stale,
            4 => PreKind::DataOnly,
            _ => PreKind::Shadowed,
        },
        compute: *compute,
        consume: *consume,
    })
}

fn arb_misroutines() -> Gen<Vec<MisRoutine>> {
    gen::vec_of(&arb_misroutine(), 1..10)
}

/// Builds a hand-instrumented (possibly mis-instrumented) program.
fn build(routines: &[MisRoutine]) -> Program {
    let mut b = ProgramBuilder::new();
    for r in routines {
        b.func("routine", |b| {
            let hinted = Line::splat(r.value);
            let stored = match r.kind {
                PreKind::Stale => Line::splat(r.value.wrapping_add(1)),
                _ => hinted,
            };
            match r.kind {
                PreKind::None => {}
                PreKind::Both | PreKind::Stale => {
                    let obj = b.pre_init();
                    b.pre_both(obj, LineAddr(r.line), vec![hinted]);
                }
                PreKind::Split => {
                    let obj = b.pre_init();
                    b.pre_addr(obj, LineAddr(r.line), 1);
                    b.pre_data(obj, vec![hinted]);
                }
                PreKind::DataOnly => {
                    let obj = b.pre_init();
                    b.pre_data(obj, vec![hinted]);
                }
                PreKind::Shadowed => {
                    let obj = b.pre_init();
                    b.pre_both(obj, LineAddr(r.line), vec![hinted]);
                    let obj2 = b.pre_init();
                    b.pre_both(obj2, LineAddr(r.line), vec![hinted]);
                }
            }
            b.compute(r.compute);
            if r.consume {
                b.store(LineAddr(r.line), stored);
                b.clwb(LineAddr(r.line));
                b.fence();
            }
        });
    }
    b.build()
}

/// The static pass and the trace oracle agree *exactly* on the three
/// paper misuse patterns: same findings (kinds, indices, windows), same
/// request and well-placed counts.
#[test]
fn static_lints_equal_trace_oracle() {
    let lat = BmoLatencies::paper();
    forall_cfg(&Config::with_cases(96), &arb_misroutines(), |routines| {
        let p = build(routines);
        let stat = detect_misuse_with(&p, &lat);
        let dyn_ = trace_oracle_with(&p, &lat);
        assert_eq!(stat.findings, dyn_.findings, "program: {routines:?}");
        assert_eq!(stat.requests, dyn_.requests);
        assert_eq!(stat.well_placed, dyn_.well_placed);
    });
}

/// The satellite property: a statically lint-clean program produces zero
/// dynamic misuses. Checked on the output of both automated passes —
/// `instrument` and `janus_lint::auto_place` — over marker-annotated
/// uninstrumented programs.
#[test]
fn static_clean_implies_dynamic_clean() {
    forall_cfg(&Config::with_cases(64), &arb_misroutines(), |routines| {
        // Strip the hand instrumentation, keep only provenance markers.
        let mut b = ProgramBuilder::new();
        for r in routines {
            b.func("routine", |b| {
                let value = Line::splat(r.value);
                b.addr_gen(LineAddr(r.line), 1);
                b.data_gen(LineAddr(r.line), vec![value]);
                b.compute(r.compute);
                b.store(LineAddr(r.line), value);
                b.clwb(LineAddr(r.line));
                b.fence();
            });
        }
        let bare = b.build();

        for p in [instrument(&bare).0, auto_place(&bare).0] {
            let lint = lint_default(&p);
            if lint.errors() == 0 {
                let oracle = trace_oracle_with(&p, &BmoLatencies::paper());
                assert!(
                    oracle.findings.is_empty(),
                    "lint-clean program has dynamic misuses: {:?}",
                    oracle.findings
                );
            }
        }
    });
}
