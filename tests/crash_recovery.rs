//! Crash-consistency integration tests: power failures, integrity
//! verification, and undo-log rollback across the full stack.

use janus::core::config::{JanusConfig, SystemMode};
use janus::core::controller::MemoryController;
use janus::core::system::System;
use janus::nvm::{addr::LineAddr, line::Line};
use janus::sim::time::Cycles;
use janus::workloads::undo::{undo_recovery, Instrumentation, WorkloadCtx};
use janus::workloads::{generate, Workload, WorkloadConfig};

fn config() -> JanusConfig {
    JanusConfig::paper(SystemMode::Janus, 1)
}

#[test]
fn every_workload_survives_a_post_run_crash() {
    for w in Workload::all() {
        let out = generate(
            w,
            0,
            &WorkloadConfig {
                transactions: 10,
                instrumentation: Instrumentation::Manual,
                ..WorkloadConfig::default()
            },
        );
        let mut sys = System::new(config());
        let (snapshot, root) = sys
            .run_until_crash(vec![out.program], Cycles(u64::MAX / 2))
            .expect("one program per core");
        let rec = MemoryController::recover(&snapshot, config(), root)
            .unwrap_or_else(|e| panic!("{w}: recovery failed: {e}"));
        for (line, expected) in out.expected.iter() {
            assert_eq!(&rec.read_value(line), expected, "{w}: {line} after crash");
        }
    }
}

#[test]
fn mid_run_crash_recovers_to_a_consistent_prefix() {
    // Crash part-way through: whatever recovered must be *consistent* —
    // integrity verifies, and each line holds one of the values the program
    // wrote to it (never garbage).
    let out = generate(
        Workload::ArraySwap,
        0,
        &WorkloadConfig {
            transactions: 40,
            ..WorkloadConfig::default()
        },
    );
    // Legal values per line: every value ever written plus zero.
    let mut legal: std::collections::HashMap<LineAddr, Vec<Line>> =
        std::collections::HashMap::new();
    for op in &out.program.ops {
        if let janus::core::ir::Op::Store { line, value } = op {
            legal.entry(*line).or_default().push(*value);
        }
    }

    for crash_at in [50_000u64, 200_000, 400_000, 800_000] {
        let mut sys = System::new(config());
        let (snapshot, root) = sys
            .run_until_crash(vec![out.program.clone()], Cycles(crash_at))
            .expect("one program per core");
        let rec = MemoryController::recover(&snapshot, config(), root)
            .unwrap_or_else(|e| panic!("crash@{crash_at}: {e}"));
        for (line, values) in &legal {
            let got = rec.read_value(*line);
            assert!(
                got.is_zero() || values.contains(&got),
                "crash@{crash_at}: line {line} holds a value never written"
            );
        }
    }
}

#[test]
fn undo_log_rolls_back_torn_transactions() {
    // Build a program whose last transaction updates but never commits.
    let mut ctx = WorkloadCtx::new(0, Instrumentation::None);
    let target = ctx.heap.alloc(1);
    ctx.begin_tx();
    ctx.backup(&[(target, Line::zero())]);
    ctx.update(&[(target, Line::splat(1))]);
    ctx.commit();
    ctx.begin_tx();
    ctx.backup(&[(target, Line::splat(1))]);
    ctx.update(&[(target, Line::splat(2))]);
    // crash before commit
    let program = ctx.build();

    let mut sys = System::new(config());
    let (snapshot, root) = sys
        .run_until_crash(vec![program], Cycles(u64::MAX / 2))
        .expect("one program per core");
    let rec = MemoryController::recover(&snapshot, config(), root).expect("recovery");
    // The in-place update persisted...
    assert_eq!(rec.read_value(target), Line::splat(2));
    // ...but the undo log knows to roll it back.
    let fixes = undo_recovery(0, |l| rec.read_value(l));
    assert_eq!(fixes, vec![(target, Line::splat(1))]);
}

#[test]
fn tampered_snapshot_is_rejected() {
    let out = generate(
        Workload::Tatp,
        0,
        &WorkloadConfig {
            transactions: 5,
            ..WorkloadConfig::default()
        },
    );
    let mut sys = System::new(config());
    let (mut snapshot, root) = sys
        .run_until_crash(vec![out.program], Cycles(u64::MAX / 2))
        .expect("one program per core");
    // Attacker rewrites chunks of some non-zero persisted line (multi-bit
    // damage: beyond SECDED correction, so it must be *detected*).
    let victim = snapshot.iter().next().map(|(a, _)| a).expect("non-empty");
    let mut line = snapshot.read(victim);
    for b in [2usize, 13, 30, 55] {
        line.0[b] ^= 0x5A;
    }
    snapshot.write(victim, line);
    assert!(
        MemoryController::recover(&snapshot, config(), root).is_err(),
        "tampering with {victim} must be detected"
    );
}

#[test]
fn secure_root_tracks_every_write() {
    let mut mc = MemoryController::new(config());
    let r0 = mc.secure_root();
    mc.handle_write(Cycles(0), 0, LineAddr(1), Line::splat(1), true);
    let r1 = mc.secure_root();
    assert_ne!(r0, r1);
    mc.handle_write(Cycles(100_000), 0, LineAddr(2), Line::splat(2), true);
    assert_ne!(r1, mc.secure_root());
}
