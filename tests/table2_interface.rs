//! Table 2, function by function: each Janus software-interface call's
//! observable semantics at the system level.

use janus::core::config::{JanusConfig, SystemMode};
use janus::core::ir::ProgramBuilder;
use janus::core::system::{ExecutionReport, System};
use janus::nvm::{addr::LineAddr, line::Line};

fn run(p: janus::core::ir::Program) -> (ExecutionReport, System) {
    let mut sys = System::new(JanusConfig::paper(SystemMode::Janus, 1));
    let report = sys.run(vec![p]);
    (report, sys)
}

const WINDOW: u32 = 5_000; // enough compute for full pre-execution

/// `PRE_BOTH(obj, addr, data, size)`: pre-execute all sub-operations.
#[test]
fn pre_both_hides_the_entire_bmo_latency() {
    let mut b = ProgramBuilder::new();
    let obj = b.pre_init();
    b.pre_both(obj, LineAddr(1), vec![Line::splat(1)]);
    b.compute(WINDOW);
    b.persist_store(LineAddr(1), Line::splat(1));
    let (r, _) = run(b.build());
    assert_eq!(r.counter("pre_full"), 1);
    assert_eq!(r.counter("pre_partial") + r.counter("pre_miss"), 0);
}

/// `PRE_ADDR(obj, addr, size)`: only address-dependent sub-operations run
/// early; the data-dependent chain still runs at the write.
#[test]
fn pre_addr_alone_gives_partial_benefit() {
    let mut b = ProgramBuilder::new();
    let obj = b.pre_init();
    b.pre_addr(obj, LineAddr(1), 1);
    b.compute(WINDOW);
    b.persist_store(LineAddr(1), Line::splat(1));
    let (r, _) = run(b.build());
    // Consumed, but completion happens after arrival (data arrived late).
    assert_eq!(r.counter("pre_partial"), 1);
    assert_eq!(r.counter("pre_full"), 0);
}

/// `PRE_DATA(obj, data, size)` + later `PRE_ADDR` on the same obj pair up
/// in the IRB (the Figure 8a pattern).
#[test]
fn pre_data_then_pre_addr_pair_up() {
    let mut b = ProgramBuilder::new();
    let obj = b.pre_init();
    b.pre_data(obj, vec![Line::splat(2)]);
    b.compute(WINDOW / 2);
    b.pre_addr(obj, LineAddr(3), 1);
    b.compute(WINDOW);
    b.persist_store(LineAddr(3), Line::splat(2));
    let (r, _) = run(b.build());
    assert_eq!(r.counter("pre_full"), 1);
    // One IRB entry, not two.
    assert_eq!(r.irb.0, 1, "inserted");
    assert_eq!(r.irb.1, 1, "consumed");
}

/// `PRE_DATA` alone (never bound to an address) can never be consumed —
/// the guideline in §4.4 — and must be harmless.
#[test]
fn pre_data_alone_is_wasted_but_harmless() {
    let mut b = ProgramBuilder::new();
    let obj = b.pre_init();
    b.pre_data(obj, vec![Line::splat(2)]);
    b.compute(WINDOW);
    b.persist_store(LineAddr(3), Line::splat(2));
    let (r, sys) = run(b.build());
    assert_eq!(r.counter("pre_miss"), 1);
    assert_eq!(sys.read_value(LineAddr(3)), Line::splat(2));
}

/// `PRE_BOTH_VAL(obj, addr, int)` — the commit-record idiom: a one-word
/// value is pre-executed exactly like a full line.
#[test]
fn pre_both_val_idiom_for_commit_records() {
    let mut b = ProgramBuilder::new();
    let commit_val = Line::from_words(&[42, 0xC0FFEE]);
    let obj = b.pre_init();
    b.pre_both(obj, LineAddr(9), vec![commit_val]); // PRE_BOTH_VAL lowering
    b.compute(WINDOW);
    b.persist_store(LineAddr(9), commit_val);
    let (r, sys) = run(b.build());
    assert_eq!(r.counter("pre_full"), 1);
    assert_eq!(sys.read_value(LineAddr(9)).read_u64(8), 0xC0FFEE);
}

/// `*_BUF` + `PRE_START_BUF`: buffered requests do nothing until started.
#[test]
fn buffered_requests_wait_for_start() {
    // Without PRE_START_BUF the buffered request never executes.
    let mut b = ProgramBuilder::new();
    let obj = b.pre_init();
    b.pre_both_buf(obj, LineAddr(5), vec![Line::splat(5)]);
    b.compute(WINDOW);
    b.persist_store(LineAddr(5), Line::splat(5));
    let (r, _) = run(b.build());
    assert_eq!(r.counter("pre_miss"), 1, "unstarted buffer is inert");

    // With PRE_START_BUF it becomes a normal pre-execution.
    let mut b = ProgramBuilder::new();
    let obj = b.pre_init();
    b.pre_both_buf(obj, LineAddr(5), vec![Line::splat(5)]);
    b.pre_start_buf(obj);
    b.compute(WINDOW);
    b.persist_store(LineAddr(5), Line::splat(5));
    let (r, _) = run(b.build());
    assert_eq!(r.counter("pre_full"), 1);
}

/// Buffered requests to adjacent lines coalesce into one request (the
/// deferred-execution efficiency argument of §4.4).
#[test]
fn buffered_adjacent_fields_coalesce() {
    let mut b = ProgramBuilder::new();
    let obj = b.pre_init();
    b.pre_both_buf(obj, LineAddr(16), vec![Line::splat(1)]);
    b.pre_both_buf(obj, LineAddr(17), vec![Line::splat(2)]);
    b.pre_start_buf(obj);
    b.compute(WINDOW);
    b.store(LineAddr(16), Line::splat(1));
    b.store(LineAddr(17), Line::splat(2));
    b.clwb(LineAddr(16));
    b.clwb(LineAddr(17));
    b.fence();
    let (r, _) = run(b.build());
    assert_eq!(r.counter("pre_full"), 2);
    assert_eq!(
        r.irb.0, 2,
        "two line-granular entries from one coalesced request"
    );
}

/// `PRE_INIT` alone has no observable effect.
#[test]
fn pre_init_alone_is_a_no_op() {
    let mut b = ProgramBuilder::new();
    let _obj = b.pre_init();
    b.persist_store(LineAddr(1), Line::splat(1));
    let (r, _) = run(b.build());
    assert_eq!(r.irb.0, 0);
    assert_eq!(r.counter("pre_miss"), 1);
}

/// Requests are per-thread: TransactionID/ThreadID keep streams apart
/// (exercised at the multi-core level elsewhere; here: two objs on one
/// thread never interfere).
#[test]
fn distinct_objs_do_not_interfere() {
    let mut b = ProgramBuilder::new();
    let o1 = b.pre_init();
    let o2 = b.pre_init();
    b.pre_both(o1, LineAddr(1), vec![Line::splat(1)]);
    b.pre_both(o2, LineAddr(2), vec![Line::splat(2)]);
    b.compute(WINDOW);
    b.store(LineAddr(1), Line::splat(1));
    b.store(LineAddr(2), Line::splat(2));
    b.clwb(LineAddr(1));
    b.clwb(LineAddr(2));
    b.fence();
    let (r, sys) = run(b.build());
    assert_eq!(r.counter("pre_full"), 2);
    assert_eq!(sys.read_value(LineAddr(1)), Line::splat(1));
    assert_eq!(sys.read_value(LineAddr(2)), Line::splat(2));
}
