//! Integration tests for `janus-lint`: golden lint-report snapshots over
//! the workload suite, negative tests that misplace `PRE_*` calls and
//! assert each lint fires at the right span, byte-determinism of the JSON
//! reports, and the headline guarantee for the automated placement pass —
//! `auto_place` must recover ≥95% of the hand instrumentation's Figure 9
//! speedup.

use janus::core::config::{JanusConfig, SystemMode};
use janus::core::ir::ProgramBuilder;
use janus::core::system::System;
use janus::instrument::instrument;
use janus::lint::{
    auto_place, fix_default, lint_default, lint_permutations, seed_stale_hint, LintCode, Severity,
};
use janus::nvm::addr::LineAddr;
use janus::nvm::line::Line;
use janus::workloads::{generate, Instrumentation, Workload, WorkloadConfig};

fn manual_program(w: Workload) -> janus::core::ir::Program {
    generate(
        w,
        0,
        &WorkloadConfig {
            transactions: 50,
            instrumentation: Instrumentation::Manual,
            ..WorkloadConfig::default()
        },
    )
    .program
}

fn bare_program(w: Workload, tx: usize) -> janus::workloads::WorkloadOutput {
    generate(
        w,
        0,
        &WorkloadConfig {
            transactions: tx,
            instrumentation: Instrumentation::None,
            ..WorkloadConfig::default()
        },
    )
}

/// Golden snapshots: the lint report for every workload's manual
/// instrumentation (clean, with pinned request counts) and for the legacy
/// compiler pass's output (which carries short-window diagnostics). The
/// files under `tests/golden/lint/` are regenerated with
/// `cargo run -p janus-bench --bin janus-lint -- --all --json [--instr auto]`.
#[test]
fn golden_lint_reports() {
    let golden: [(&str, &str, &str); 7] = [
        (
            "array_swap",
            include_str!("golden/lint/array_swap.json"),
            include_str!("golden/lint/array_swap.auto.json"),
        ),
        (
            "queue",
            include_str!("golden/lint/queue.json"),
            include_str!("golden/lint/queue.auto.json"),
        ),
        (
            "hash_table",
            include_str!("golden/lint/hash_table.json"),
            include_str!("golden/lint/hash_table.auto.json"),
        ),
        (
            "btree",
            include_str!("golden/lint/btree.json"),
            include_str!("golden/lint/btree.auto.json"),
        ),
        (
            "rb_tree",
            include_str!("golden/lint/rb_tree.json"),
            include_str!("golden/lint/rb_tree.auto.json"),
        ),
        (
            "tatp",
            include_str!("golden/lint/tatp.json"),
            include_str!("golden/lint/tatp.auto.json"),
        ),
        (
            "tpcc",
            include_str!("golden/lint/tpcc.json"),
            include_str!("golden/lint/tpcc.auto.json"),
        ),
    ];

    for w in Workload::all() {
        let (_, manual_golden, auto_golden) = golden
            .iter()
            .find(|(slug, _, _)| *slug == w.slug())
            .expect("golden file per workload");
        let manual = lint_default(&manual_program(w));
        assert_eq!(
            manual.to_json(),
            manual_golden.trim_end(),
            "{w}: manual lint report diverged from golden"
        );
        assert_eq!(
            manual.errors(),
            0,
            "{w}: manual instrumentation must lint clean"
        );

        let auto = lint_default(&instrument(&bare_program(w, 50).program).0);
        assert_eq!(
            auto.to_json(),
            auto_golden.trim_end(),
            "{w}: auto lint report diverged from golden"
        );
    }
}

/// Byte-determinism: regenerating the workload and linting again must give
/// the identical JSON string, and the permutation sweep is stable too.
#[test]
fn lint_reports_are_byte_deterministic() {
    for w in [Workload::Tatp, Workload::Tpcc] {
        let a = lint_default(&manual_program(w)).to_json();
        let b = lint_default(&manual_program(w)).to_json();
        assert_eq!(a, b);
    }
    let lat = janus::bmo::latency::BmoLatencies::paper();
    assert_eq!(lint_permutations(&lat), lint_permutations(&lat));
}

/// A store that changes the hinted value is flagged at the store's span,
/// pointing back at the request.
#[test]
fn misplaced_stale_hint_fires_at_the_store() {
    let mut b = ProgramBuilder::new();
    let obj = b.pre_init(); // @0
    b.pre_both(obj, LineAddr(1), vec![Line::splat(1)]); // @1
    b.compute(5000); // @2
    b.store(LineAddr(1), Line::splat(2)); // @3 — differs from hint
    b.clwb(LineAddr(1)); // @4
    b.fence(); // @5
    let r = lint_default(&b.build());
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::ModifiedAfterPre)
        .expect("stale hint must be flagged");
    assert_eq!((d.at, d.other, d.line), (3, Some(1), Some(1)));
    assert_eq!(d.severity, Severity::Error);
}

/// A request no write ever consumes is flagged at the request's span.
#[test]
fn misplaced_unconsumed_request_fires_at_the_request() {
    let mut b = ProgramBuilder::new();
    let obj = b.pre_init(); // @0
    b.pre_both(obj, LineAddr(1), vec![Line::splat(1)]); // @1
    b.compute(100); // @2 — and no write follows
    let r = lint_default(&b.build());
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::UselessPre)
        .expect("unconsumed request must be flagged");
    assert_eq!((d.at, d.line), (1, Some(1)));
}

/// A request issued too close to its flush is flagged at the flush, with
/// the window and the required BMO critical path (2764 cycles for the
/// paper stack).
#[test]
fn misplaced_late_request_fires_at_the_flush() {
    let mut b = ProgramBuilder::new();
    let obj = b.pre_init(); // @0
    b.pre_both(obj, LineAddr(1), vec![Line::splat(1)]); // @1
    b.compute(100); // @2 — far less than the critical path
    b.store(LineAddr(1), Line::splat(1)); // @3
    b.clwb(LineAddr(1)); // @4
    b.fence(); // @5
    let r = lint_default(&b.build());
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::InsufficientWindow)
        .expect("short window must be flagged");
    assert_eq!((d.at, d.other), (4, Some(1)));
    let (window, required) = d.window.expect("window diagnostics carry cycles");
    assert!(window < required);
    assert_eq!(required, 2764);
}

/// An exact duplicate of a live request is a redundant-pre warning (and
/// the shadowed original a useless-pre error).
#[test]
fn duplicate_request_fires_redundant_pre() {
    let mut b = ProgramBuilder::new();
    let obj = b.pre_init(); // @0
    b.pre_both(obj, LineAddr(1), vec![Line::splat(1)]); // @1
    let obj2 = b.pre_init(); // @2
    b.pre_both(obj2, LineAddr(1), vec![Line::splat(1)]); // @3 — identical
    b.compute(5000);
    b.store(LineAddr(1), Line::splat(1));
    b.clwb(LineAddr(1));
    b.fence();
    let r = lint_default(&b.build());
    let dup = r
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::RedundantPre)
        .expect("duplicate must be flagged redundant");
    assert_eq!(dup.at, 3);
    assert_eq!(dup.severity, Severity::Warning);
    let shadowed = r
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::UselessPre)
        .expect("shadowed original is useless");
    assert_eq!(shadowed.at, 1);
}

/// A flush that never reaches a fence before commit is a persist-ordering
/// hazard at the flush's span.
#[test]
fn unfenced_flush_fires_persist_ordering() {
    let mut b = ProgramBuilder::new();
    b.tx_begin();
    b.store(LineAddr(1), Line::splat(1));
    let clwb_at = {
        b.clwb(LineAddr(1));
        2
    };
    b.tx_commit(); // no fence between the clwb and the commit
    let r = lint_default(&b.build());
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::PersistOrdering)
        .expect("unfenced flush must be flagged");
    assert_eq!(d.at, clwb_at);
}

/// More live requests than the IRB holds is an IRB-pressure warning
/// carrying (peak, capacity).
#[test]
fn over_capacity_requests_fire_irb_pressure() {
    let mut b = ProgramBuilder::new();
    for k in 0..80u64 {
        let obj = b.pre_init();
        b.pre_both(obj, LineAddr(k), vec![Line::splat(k as u8)]);
    }
    b.compute(5000);
    for k in 0..80u64 {
        b.store(LineAddr(k), Line::splat(k as u8));
        b.clwb(LineAddr(k));
    }
    b.fence();
    let r = lint_default(&b.build());
    let d = r
        .diagnostics
        .iter()
        .find(|d| d.code == LintCode::IrbPressure)
        .expect("IRB pressure must be flagged");
    assert_eq!(d.window, Some((80, 64)));
    assert_eq!(d.severity, Severity::Warning);
}

fn run_cycles(program: janus::core::ir::Program, out: &janus::workloads::WorkloadOutput) -> f64 {
    let mode = if program.ops.iter().any(|o| o.is_pre()) {
        SystemMode::Janus
    } else {
        SystemMode::Serialized
    };
    let mut sys = System::new(JanusConfig::paper(mode, 1));
    sys.warm_caches(out.expected.iter().map(|(a, _)| a));
    for (first, n) in &out.resident {
        sys.warm_caches(first.span(*n));
    }
    sys.run(vec![program]).cycles.0 as f64
}

/// The acceptance bar for the fix engine: seed the canonical §6 misuse
/// into every workload's manual instrumentation, repair it with the
/// `--fix` engine, and the fixed program must lint clean *and* recover at
/// least 95% of the hand instrumentation's Figure 9 speedup over the
/// serialized baseline.
#[test]
fn fixed_seeded_misuse_recovers_manual_speedup() {
    const TX: usize = 40;
    for w in Workload::all() {
        let bare = bare_program(w, TX);
        let manual = generate(
            w,
            0,
            &WorkloadConfig {
                transactions: TX,
                instrumentation: Instrumentation::Manual,
                ..WorkloadConfig::default()
            },
        );
        let mut seeded = manual.program.clone();
        seed_stale_hint(&mut seeded);
        assert!(
            lint_default(&seeded).errors() > 0,
            "{w}: the seeded misuse must trip the lint"
        );
        let outcome = fix_default(&seeded);
        assert_eq!(
            outcome.after.errors(),
            0,
            "{w}: fixed program must lint clean: {:?}",
            outcome.after.diagnostics
        );
        let serialized = run_cycles(bare.program.clone(), &bare);
        let manual_cycles = run_cycles(manual.program.clone(), &manual);
        let fixed_cycles = run_cycles(outcome.program.clone(), &manual);
        let manual_speedup = serialized / manual_cycles;
        let fixed_speedup = serialized / fixed_cycles;
        assert!(
            fixed_speedup >= 0.95 * manual_speedup,
            "{w}: fixed speedup {fixed_speedup:.2}x < 95% of manual {manual_speedup:.2}x"
        );
    }
}

/// The acceptance bar for the placement pass: on the Figure 9 workloads,
/// `auto_place`'s speedup over the serialized baseline must be at least
/// 95% of the hand instrumentation's.
#[test]
fn auto_place_recovers_manual_speedup() {
    const TX: usize = 40;
    for w in Workload::all() {
        let bare = bare_program(w, TX);
        let manual = generate(
            w,
            0,
            &WorkloadConfig {
                transactions: TX,
                instrumentation: Instrumentation::Manual,
                ..WorkloadConfig::default()
            },
        );
        let serialized = run_cycles(bare.program.clone(), &bare);
        let manual_cycles = run_cycles(manual.program.clone(), &manual);
        let placed_cycles = run_cycles(auto_place(&bare.program).0, &bare);
        let manual_speedup = serialized / manual_cycles;
        let placed_speedup = serialized / placed_cycles;
        assert!(
            placed_speedup >= 0.95 * manual_speedup,
            "{w}: auto_place speedup {placed_speedup:.2}x < 95% of manual {manual_speedup:.2}x"
        );
    }
}
