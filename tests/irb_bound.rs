//! Differential tests for the cross-tenant IRB-contention bound
//! (`janus-lint --tenants`): whenever the static occupancy analysis says a
//! tenant mix is safe under a policy, the open-loop multi-tenant simulator
//! must record zero IRB drops — checked deterministically for all three
//! policies and property-tested over randomized tenant mixes. The unsafe
//! verdict is shown to be non-vacuous: a quota the bound rejects really
//! does drop inserts in the simulator.

use std::cell::Cell;

use janus::core::config::{JanusConfig, SystemMode};
use janus::core::irb::IrbPolicy;
use janus::core::system::{ExecutionReport, System};
use janus::core::tenant::TenantStream;
use janus::lint::{irb_bound_for_tenants, IrbBound, IrbVerdict};
use janus::sim::time::Cycles;
use janus::workloads::traffic::{generate_tenants, Arrival, TenantSpec};
use janus::workloads::{Instrumentation, Workload};
use janus_check::{forall_cfg, gen, Config};

const MIX: [Workload; 4] = [
    Workload::Tatp,
    Workload::HashTable,
    Workload::Queue,
    Workload::Tpcc,
];

fn manual_specs(tenants: usize, tx: usize, mean: u64) -> Vec<TenantSpec> {
    (0..tenants)
        .map(|t| {
            let mut s = TenantSpec::new(
                MIX[t % MIX.len()],
                tx,
                Arrival::Poisson { mean: Cycles(mean) },
            );
            s.instrumentation = Instrumentation::Manual;
            s
        })
        .collect()
}

/// Computes the static bound and runs the simulator on the same streams.
fn bound_and_run(
    specs: &[TenantSpec],
    policy: IrbPolicy,
    cores: usize,
    seed: u64,
) -> (IrbBound, ExecutionReport) {
    let mut config = JanusConfig::paper(SystemMode::Janus, cores);
    config.irb_policy = policy;
    let traffic = generate_tenants(specs, seed);
    let txs: Vec<Vec<janus::core::ir::Program>> =
        traffic.iter().map(|t| t.stream.txs.clone()).collect();
    let bound = irb_bound_for_tenants(&txs, policy, config.total_irb_entries());
    let streams: Vec<TenantStream> = traffic.into_iter().map(|t| t.stream).collect();
    let mut sys = System::new(config);
    let report = sys.try_run_tenants(streams).expect("valid streams");
    (bound, report)
}

/// A safe verdict under each of the three policies is honoured by the
/// simulator: zero IRB drops (`report.irb.2`).
#[test]
fn safe_bound_implies_no_drops_for_all_policies() {
    let specs = manual_specs(4, 6, 20_000);
    for policy in [
        IrbPolicy::Shared,
        IrbPolicy::Banked { per_tenant: 64 },
        IrbPolicy::Partitioned { quota: 64 },
    ] {
        let (bound, report) = bound_and_run(&specs, policy, 2, 42);
        assert!(
            bound.verdict.is_safe(),
            "{policy}: this mix must be provably safe, got {}",
            bound.verdict
        );
        assert_eq!(
            report.irb.2, 0,
            "{policy}: bound said safe but the simulator dropped ({:?})",
            report.irb
        );
        assert_eq!(bound.demands.len(), 4);
        assert!(bound.total_peak() > 0, "demand must be non-trivial");
    }
}

/// Non-vacuity of the unsafe verdict: a quota of one is rejected by the
/// bound *and* really drops inserts in the simulator under pressure (the
/// bound is conservative, so the converse — unsafe but no drops — is
/// allowed; here we pin a case where the danger is real).
#[test]
fn unsafe_bound_is_not_vacuous() {
    let specs: Vec<TenantSpec> = (0..4)
        .map(|_| {
            let mut s = TenantSpec::new(
                Workload::HashTable,
                8,
                Arrival::Poisson { mean: Cycles(500) },
            );
            s.instrumentation = Instrumentation::Manual;
            s
        })
        .collect();
    let policy = IrbPolicy::Partitioned { quota: 1 };
    let (bound, report) = bound_and_run(&specs, policy, 2, 9);
    match bound.verdict {
        IrbVerdict::Unsafe { demand, limit, .. } => {
            assert!(demand > limit);
            assert_eq!(limit, 1);
        }
        IrbVerdict::Safe => panic!("quota=1 must be statically unsafe here"),
    }
    assert!(
        report.irb.2 > 0,
        "quota=1 must actually drop inserts: {:?}",
        report.irb
    );
}

/// Banked policies ignore the aggregate and shared policies ignore
/// per-tenant quotas — the composed verdicts disagree exactly where the
/// model says they should.
#[test]
fn policy_composition_is_policy_sensitive() {
    let specs = manual_specs(4, 6, 20_000);
    let traffic = generate_tenants(&specs, 7);
    let txs: Vec<Vec<janus::core::ir::Program>> =
        traffic.iter().map(|t| t.stream.txs.clone()).collect();
    let capacity = JanusConfig::paper(SystemMode::Janus, 2).total_irb_entries();

    let shared = irb_bound_for_tenants(&txs, IrbPolicy::Shared, capacity);
    assert!(shared.verdict.is_safe());

    // A per-tenant limit of 1 trips banked and partitioned but not shared.
    let banked = irb_bound_for_tenants(&txs, IrbPolicy::Banked { per_tenant: 1 }, capacity);
    assert!(matches!(
        banked.verdict,
        IrbVerdict::Unsafe {
            tenant: Some(_),
            limit: 1,
            ..
        }
    ));
    let part = irb_bound_for_tenants(&txs, IrbPolicy::Partitioned { quota: 1 }, capacity);
    assert!(!part.verdict.is_safe());

    // A tiny shared capacity trips the aggregate check with tenant=None.
    let tight = irb_bound_for_tenants(&txs, IrbPolicy::Shared, 1);
    assert!(matches!(
        tight.verdict,
        IrbVerdict::Unsafe { tenant: None, .. }
    ));
}

/// The randomized differential property: over random tenant counts,
/// transaction counts, policies, quotas, and seeds, every safe verdict is
/// honoured by the simulator with zero drops.
#[test]
fn random_mixes_never_contradict_the_bound() {
    let arb = gen::tuple5(
        &gen::range_usize(1..5),  // tenants
        &gen::range_usize(1..4),  // transactions per tenant
        &gen::range_u32(0..3),    // policy selector
        &gen::range_usize(4..65), // quota / bank size
        &gen::range_u64(0..1000), // traffic seed
    );
    let safe_cases = Cell::new(0usize);
    forall_cfg(
        &Config::with_cases(24),
        &arb,
        |&(tenants, tx, policy_sel, quota, seed)| {
            let policy = match policy_sel {
                0 => IrbPolicy::Shared,
                1 => IrbPolicy::Banked { per_tenant: quota },
                _ => IrbPolicy::Partitioned { quota },
            };
            let specs = manual_specs(tenants, tx, 2_000);
            let (bound, report) = bound_and_run(&specs, policy, 2, seed);
            if bound.verdict.is_safe() {
                safe_cases.set(safe_cases.get() + 1);
                assert_eq!(
                    report.irb.2, 0,
                    "bound said safe but the simulator dropped: tenants={tenants} tx={tx} \
                     policy={policy} seed={seed} demands={:?} irb={:?}",
                    bound.demands, report.irb
                );
            }
        },
    );
    assert!(
        safe_cases.get() > 0,
        "the property is vacuous: no generated mix was provably safe"
    );
}
