//! Determinism contract for the causal profiler.
//!
//! A profile is a pure function of the simulated timeline, so:
//!
//! * two identical runs must produce **byte-identical** text and JSON
//!   reports (CI also checks this end-to-end through the `janus-prof`
//!   binary), and
//! * the batched event loop and the legacy one-event-at-a-time loop —
//!   already required to produce identical execution reports — must also
//!   produce identical *profiles*: same causal chains, same accounting,
//!   same blame ranking, to the byte.

use janus::prof::Profile;
use janus::sim::time::Cycles;
use janus::workloads::traffic::Arrival;
use janus_bench::{run_quiet, OpenLoopSpec, RunSpec, Variant};
use janus_workloads::Workload;

fn profile_of(spec: &RunSpec) -> (String, String) {
    let r = run_quiet(spec.clone());
    let config = r.spec.config();
    let graph = config.stack().graph(&config.latencies);
    let p =
        Profile::build(&r.tracer.snapshot(), r.tracer.dropped(), &graph).expect("profile builds");
    (p.render_text(), p.to_json())
}

fn profiled_spec(workload: Workload, variant: Variant) -> RunSpec {
    let mut spec = RunSpec::new(workload, variant);
    spec.transactions = 20;
    spec.profile = true;
    spec
}

#[test]
fn profiles_are_byte_identical_across_reruns() {
    let spec = profiled_spec(Workload::Tatp, Variant::JanusManual);
    let (text_a, json_a) = profile_of(&spec);
    let (text_b, json_b) = profile_of(&spec);
    assert_eq!(text_a, text_b);
    assert_eq!(json_a, json_b);
    janus::prof::validate_profile_json(&json_a).expect("profile validates");
}

#[test]
fn batched_and_legacy_loops_profile_identically() {
    for (workload, variant) in [
        (Workload::Tatp, Variant::JanusManual),
        (Workload::HashTable, Variant::Parallelized),
        (Workload::ArraySwap, Variant::Serialized),
    ] {
        let mut spec = profiled_spec(workload, variant);
        spec.legacy_events = true;
        let (legacy_text, legacy_json) = profile_of(&spec);
        spec.legacy_events = false;
        let (batched_text, batched_json) = profile_of(&spec);
        assert_eq!(
            legacy_text,
            batched_text,
            "{workload} [{}]: text profiles diverge between event loops",
            variant.label()
        );
        assert_eq!(
            legacy_json,
            batched_json,
            "{workload} [{}]: JSON profiles diverge between event loops",
            variant.label()
        );
    }
}

#[test]
fn tenant_tails_group_write_latency_by_tenant_not_core() {
    // Four tenants on two cores: the profiler's per-tenant tail summary
    // must key on the issuing tenant (which the trace stream carries as
    // the write's thread id), not on whichever physical core the tenant's
    // transactions happened to land on.
    let mut spec = profiled_spec(Workload::HashTable, Variant::JanusManual);
    spec.cores = 2;
    spec.transactions = 8;
    spec.open_loop = Some(OpenLoopSpec {
        tenants: 4,
        arrival: Arrival::Poisson {
            mean: Cycles(5_000),
        },
        mix: vec![Workload::HashTable, Workload::Queue],
    });
    let r = run_quiet(spec);
    let config = r.spec.config();
    let graph = config.stack().graph(&config.latencies);
    let p =
        Profile::build(&r.tracer.snapshot(), r.tracer.dropped(), &graph).expect("profile builds");
    let tails = p.tenant_tails();
    assert_eq!(
        tails.keys().copied().collect::<Vec<u64>>(),
        vec![0, 1, 2, 3],
        "groups are the 4 tenant ids, not the 2 core ids"
    );
    let mut total = 0;
    for (tenant, t) in &tails {
        assert!(t.writes > 0, "tenant {tenant} has profiled writes");
        assert!(
            t.p50 <= t.p99 && t.p99 <= t.p999 && t.p999 <= t.max,
            "tenant {tenant} quantiles ordered: {t:?}"
        );
        assert!(t.mean <= t.max && t.mean > 0, "tenant {tenant}: {t:?}");
        total += t.writes;
    }
    assert_eq!(total as usize, p.writes().len(), "every write is grouped");
}

#[test]
fn chrome_export_with_counters_is_deterministic() {
    let export = || {
        let mut spec = profiled_spec(Workload::Queue, Variant::JanusManual);
        spec.sample_every = Some(1000);
        let r = run_quiet(spec);
        assert!(!r.samples.is_empty(), "sampler produced counter samples");
        let mut out = Vec::new();
        janus::prof::export_chrome_with_counters(
            &r.tracer.snapshot(),
            &r.samples,
            r.tracer.dropped(),
            &mut out,
        )
        .expect("chrome export");
        out
    };
    let a = export();
    assert_eq!(a, export());
    let doc = janus::trace::json::parse(std::str::from_utf8(&a).unwrap()).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    let counters = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
        .count();
    assert!(counters > 0, "counter tracks present in the merged export");
}
