//! End-to-end structural validation: decode the data structures the
//! workloads persisted *out of the simulated NVM* (through decryption and
//! integrity verification) and check their own invariants — the strongest
//! form of functional verification, independent of the generators' oracles.

use janus::core::config::{JanusConfig, SystemMode};
use janus::core::system::System;
use janus::nvm::addr::LineAddr;
use janus::workloads::pmem::{COMMIT_LINES, LOG_LINES};
use janus::workloads::{generate, Instrumentation, Workload, WorkloadConfig};

fn run(w: Workload, tx: usize) -> System {
    let out = generate(
        w,
        0,
        &WorkloadConfig {
            transactions: tx,
            instrumentation: Instrumentation::Manual,
            ..WorkloadConfig::default()
        },
    );
    let mut sys = System::new(JanusConfig::paper(SystemMode::Janus, 1));
    sys.run(vec![out.program]);
    sys
}

/// First heap line of core 0 (after the log and commit regions).
fn heap_base() -> u64 {
    LOG_LINES + COMMIT_LINES
}

#[test]
fn persisted_rb_tree_is_a_valid_bst() {
    // RB-Tree node layout (rb_tree.rs): [key, left, right, parent, red]
    // at `arena + i * (1 + payload_lines)`; payload_lines = 1 by default.
    let tx = 60;
    let sys = run(Workload::RbTree, tx);
    let node_lines = 2u64;
    let arena = heap_base();
    let node = |i: u64| sys.read_value(LineAddr(arena + i * node_lines));
    const NIL: u64 = u64::MAX;

    // Find the root: the node whose parent is NIL among written nodes.
    let mut root = None;
    for i in 0..tx as u64 {
        let n = node(i);
        if n.is_zero() {
            continue;
        }
        if n.read_u64(24) == NIL {
            assert!(root.is_none(), "two parentless nodes");
            root = Some(i);
        }
    }
    let root = root.expect("tree has a root");

    // In-order walk directly over NVM contents: keys strictly increase;
    // no red node has a red child; every child's parent pointer is right.
    fn walk(
        node: &dyn Fn(u64) -> janus::nvm::line::Line,
        i: u64,
        lo: u64,
        hi: u64,
        count: &mut usize,
    ) {
        const NIL: u64 = u64::MAX;
        if i == NIL {
            return;
        }
        let n = node(i);
        let (key, left, right, red) =
            (n.read_u64(0), n.read_u64(8), n.read_u64(16), n.read_u64(32));
        assert!(lo <= key && key < hi, "BST violation at node {i}: {key}");
        *count += 1;
        for child in [left, right] {
            if child != NIL {
                let c = node(child);
                assert_eq!(c.read_u64(24), i, "child {child} parent pointer");
                if red == 1 {
                    assert_eq!(c.read_u64(32), 0, "red-red edge at {i}->{child}");
                }
            }
        }
        walk(node, left, lo, key, count);
        walk(node, right, key, hi, count);
    }
    let mut count = 0;
    walk(&node, root, 0, u64::MAX, &mut count);
    assert_eq!(count, tx, "every inserted key is reachable from the root");
}

#[test]
fn persisted_btree_leaves_hold_sorted_reachable_keys() {
    // B-Tree node layout (btree.rs): line0 [leaf, nkeys, k0..k5],
    // line1 values/children; nodes at `arena + i*2`.
    let tx = 60;
    let sys = run(Workload::BTree, tx);
    let arena = heap_base();
    let line0 = |i: u64| sys.read_value(LineAddr(arena + i * 2));
    let line1 = |i: u64| sys.read_value(LineAddr(arena + i * 2 + 1));

    // Find the root: a node never referenced as a child.
    let max_nodes = (tx as u64 * 2).max(128);
    let mut referenced = vec![false; max_nodes as usize];
    let mut exists = vec![false; max_nodes as usize];
    for i in 0..max_nodes {
        let l0 = line0(i);
        if l0.is_zero() {
            continue;
        }
        exists[i as usize] = true;
        if l0.read_u64(0) == 0 {
            // internal: children in line1
            let nkeys = l0.read_u64(8) as usize;
            for c in 0..=nkeys {
                referenced[line1(i).read_u64(c * 8) as usize] = true;
            }
        }
    }
    let mut roots = (0..max_nodes).filter(|&i| exists[i as usize] && !referenced[i as usize]);
    let root = roots.next().expect("root exists");
    assert!(roots.next().is_none(), "single root");

    // Walk: collect all leaf keys in order; verify sortedness and count.
    fn collect(
        line0: &dyn Fn(u64) -> janus::nvm::line::Line,
        line1: &dyn Fn(u64) -> janus::nvm::line::Line,
        i: u64,
        out: &mut Vec<u64>,
    ) {
        let l0 = line0(i);
        let leaf = l0.read_u64(0) == 1;
        let nkeys = l0.read_u64(8) as usize;
        assert!(nkeys <= 6, "node {i} overflowed");
        if leaf {
            for k in 0..nkeys {
                out.push(l0.read_u64(16 + k * 8));
            }
        } else {
            for c in 0..=nkeys {
                collect(line0, line1, line1(i).read_u64(c * 8), out);
            }
        }
    }
    let mut keys = Vec::new();
    collect(&line0, &line1, root, &mut keys);
    assert_eq!(keys.len(), tx, "all inserted keys reachable");
    assert!(keys.windows(2).all(|w| w[0] < w[1]), "leaf keys sorted");
}

#[test]
fn persisted_queue_metadata_is_consistent() {
    let tx = 80;
    let sys = run(Workload::Queue, tx);
    // Queue meta line is the first heap allocation: [head, tail, count].
    let meta = sys.read_value(LineAddr(heap_base()));
    let (head, tail, count) = (meta.read_u64(0), meta.read_u64(8), meta.read_u64(16));
    assert_eq!(tail - head, count, "head/tail/count disagree");
    assert!(tail >= head);
    // Every in-queue slot holds a non-zero item (enqueued payloads).
    let slots = heap_base() + 1;
    for i in head..tail {
        let slot = sys.read_value(LineAddr(slots + (i % 512)));
        assert!(!slot.is_zero(), "queued slot {i} is empty");
    }
}

#[test]
fn persisted_tpcc_orders_chain_to_the_district() {
    let tx = 40;
    let sys = run(Workload::Tpcc, tx);
    // District is the first heap line: [next_o_id, ytd].
    let district = sys.read_value(LineAddr(heap_base()));
    assert_eq!(district.read_u64(0), tx as u64);
    // Each order header [o_id, customer, ol_cnt, 1] exists and is valid.
    let orders = heap_base() + 1;
    for o in 0..tx as u64 {
        let h = sys.read_value(LineAddr(orders + o * 2));
        assert_eq!(h.read_u64(0), o, "order id");
        assert_eq!(h.read_u64(24), 1, "order valid flag");
        let ol_cnt = h.read_u64(16);
        assert!((5..=12).contains(&ol_cnt), "ol_cnt {ol_cnt}");
    }
}
