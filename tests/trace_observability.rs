//! Integration tests for the janus-trace observability pipeline: golden
//! determinism of the Chrome export, event-taxonomy coverage, span
//! well-formedness (property-tested), ring eviction, and the
//! tracing-disabled parity guarantee.

use janus::core::config::{JanusConfig, SystemMode};
use janus::core::ir::{Program, ProgramBuilder};
use janus::core::system::{ExecutionReport, System};
use janus::nvm::{addr::LineAddr, line::Line};
use janus::trace::{json, Category, EventKind, TraceConfig, TraceEvent, Tracer};
use janus_check::{forall_cfg, gen, Config};

/// A quickstart-style program: `txs` pre-announced persistent writes, every
/// fifth announcing a value the store then contradicts (exercising the IRB
/// data-invalidation path).
fn program(txs: u64) -> Program {
    let mut b = ProgramBuilder::new();
    for i in 0..txs {
        b.tx_begin();
        let line = LineAddr(i % 8);
        let value = Line::from_words(&[i, i * i]);
        let obj = b.pre_init();
        if i % 5 == 0 {
            b.pre_both(obj, line, vec![Line::from_words(&[i + 1, 7])]);
        } else {
            b.pre_both(obj, line, vec![value]);
        }
        b.compute(4000);
        b.store(line, value);
        b.clwb(line);
        b.fence();
        b.tx_commit();
    }
    b.build()
}

fn traced_run(txs: u64, capacity: usize) -> (Tracer, ExecutionReport) {
    let mut sys = System::new(JanusConfig::paper(SystemMode::Janus, 1));
    let tracer = sys.enable_trace(&TraceConfig { capacity });
    let report = sys.run(vec![program(txs)]);
    (tracer, report)
}

fn export(tracer: &Tracer) -> Vec<u8> {
    let mut out = Vec::new();
    tracer.export_chrome(&mut out).unwrap();
    out
}

/// Same program, same seed, two fresh systems: the exported traces must be
/// byte-identical — the golden-determinism guarantee scripts rely on.
#[test]
fn same_run_exports_byte_identical_traces() {
    let (a, _) = traced_run(20, 1 << 16);
    let (b, _) = traced_run(20, 1 << 16);
    let (ea, eb) = (export(&a), export(&b));
    assert!(!ea.is_empty());
    assert_eq!(ea, eb, "same-seed exports diverged");
}

/// The trace covers the advertised taxonomy: IRB lifecycle instants, job
/// lifecycle instants, and sub-op spans for all three evaluated BMOs.
#[test]
fn trace_covers_irb_job_and_bmo_taxonomy() {
    let (tracer, _) = traced_run(20, 1 << 16);
    let events = tracer.snapshot();
    let has = |name: &str| events.iter().any(|e| e.name == name);
    for name in [
        "irb_insert",
        "irb_hit",
        "irb_inval_data",
        "job_decomposed",
        "job_pre_executed",
        "job_committed",
        "pre_req_enqueue",
        "nvm_write",
        "wq_occupancy",
        "write",
    ] {
        assert!(has(name), "missing event {name:?}");
    }
    for (cat, first_subop) in [
        (Category::Encryption, "E1"),
        (Category::Integrity, "I1"),
        (Category::Dedup, "D1"),
    ] {
        assert!(
            events
                .iter()
                .any(|e| e.cat == cat && e.name == first_subop && e.kind == EventKind::Begin),
            "missing {first_subop} span in {cat}"
        );
    }
}

/// Tracing must be observation-only: the report of a traced run equals the
/// report of an untraced run of the same program.
#[test]
fn disabled_tracing_yields_identical_report() {
    let (_, traced) = traced_run(20, 1 << 16);
    let mut plain_sys = System::new(JanusConfig::paper(SystemMode::Janus, 1));
    let plain = plain_sys.run(vec![program(20)]);
    assert_eq!(traced.cycles, plain.cycles);
    assert_eq!(traced.transactions, plain.transactions);
    assert_eq!(traced.writes, plain.writes);
    assert_eq!(
        traced.fully_preexecuted_fraction,
        plain.fully_preexecuted_fraction
    );
    assert!(!plain_sys.tracer().enabled());
}

/// The export parses as strict JSON, has a non-empty `traceEvents` array
/// with completed ("X") spans, and reports the drop count.
#[test]
fn export_is_valid_chrome_trace_json() {
    let (tracer, _) = traced_run(20, 1 << 16);
    let text = String::from_utf8(export(&tracer)).unwrap();
    let doc = json::parse(&text).unwrap();
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let complete = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .count();
    let instants = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("i"))
        .count();
    assert!(complete > 0, "no completed spans");
    assert!(instants > 0, "no instants");
    for e in events {
        let ts = e.get("ts").and_then(|t| t.as_f64()).expect("ts");
        assert!(ts >= 0.0);
    }
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("dropped_events"))
        .and_then(|d| d.as_f64())
        .expect("dropped_events");
    assert_eq!(dropped, tracer.dropped() as f64);
}

/// A deliberately tiny ring drops the oldest events but the export stays
/// valid and honest about the loss.
#[test]
fn tiny_ring_evicts_oldest_but_export_stays_valid() {
    let (tracer, _) = traced_run(20, 32);
    assert!(tracer.dropped() > 0, "expected wraparound");
    assert!(tracer.len() <= 32);
    let text = String::from_utf8(export(&tracer)).unwrap();
    let doc = json::parse(&text).unwrap();
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("dropped_events"))
        .and_then(|d| d.as_f64())
        .unwrap();
    assert_eq!(dropped, tracer.dropped() as f64);
}

/// Checks FIFO begin/end pairing per `(category, name, id)` key: ends never
/// outnumber begins, every end's cycle is ≥ its matched begin's cycle, and
/// nothing is left open at the end of a drop-free run.
fn assert_spans_well_formed(events: &[TraceEvent]) {
    use std::collections::HashMap;
    let mut open: HashMap<(Category, &'static str, u64), Vec<u64>> = HashMap::new();
    for e in events {
        match e.kind {
            EventKind::Begin => open
                .entry((e.cat, e.name, e.id))
                .or_default()
                .push(e.cycle.0),
            EventKind::End => {
                let stack = open
                    .get_mut(&(e.cat, e.name, e.id))
                    .unwrap_or_else(|| panic!("end without begin: {} id={}", e.name, e.id));
                assert!(
                    !stack.is_empty(),
                    "end without begin: {} id={}",
                    e.name,
                    e.id
                );
                let begin = stack.remove(0);
                assert!(
                    e.cycle.0 >= begin,
                    "{} id={} ends at {} before it begins at {begin}",
                    e.name,
                    e.id,
                    e.cycle.0
                );
            }
            EventKind::Instant | EventKind::Counter => {}
        }
    }
    for ((_, name, id), stack) in open {
        assert!(stack.is_empty(), "unclosed span {name} id={id}");
    }
}

/// Property: for arbitrary pre-announced write sequences, every span in a
/// drop-free trace is well-formed.
#[test]
fn spans_are_well_formed_for_arbitrary_programs() {
    let writes = gen::vec_of(
        &gen::pair(&gen::range_u64(0..16), &gen::range_u64(0..4)),
        1..30,
    );
    let g = gen::pair(&writes, &gen::range_u64(2..7));
    forall_cfg(&Config::with_cases(12), &g, |(writes, stale_every)| {
        let mut b = ProgramBuilder::new();
        for (i, (addr, word)) in writes.iter().enumerate() {
            b.tx_begin();
            let line = LineAddr(*addr);
            let value = Line::from_words(&[*word, i as u64]);
            let obj = b.pre_init();
            if (i as u64).is_multiple_of(*stale_every) {
                b.pre_both(obj, line, vec![Line::from_words(&[*word + 1, 9])]);
            } else {
                b.pre_both(obj, line, vec![value]);
            }
            b.compute(1000);
            b.store(line, value);
            b.clwb(line);
            b.fence();
            b.tx_commit();
        }
        let mut sys = System::new(JanusConfig::paper(SystemMode::Janus, 1));
        let tracer = sys.enable_trace(&TraceConfig { capacity: 1 << 16 });
        sys.run(vec![b.build()]);
        assert_eq!(tracer.dropped(), 0, "ring too small for the property");
        assert_spans_well_formed(&tracer.snapshot());
    });
}
