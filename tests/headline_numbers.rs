//! Regression guard for the headline reproduction numbers: if a change to
//! the simulator or workloads moves the Figure 9/10/11 results outside
//! generous bands around the paper's values, these tests fail.
//!
//! Bands are deliberately loose (the precise values live in EXPERIMENTS.md
//! and depend on `--tx`); the point is to catch structural regressions —
//! a broken scheduler, a mispriced latency — not noise.

use janus::core::config::{JanusConfig, SystemMode};
use janus::core::system::System;
use janus::instrument::instrument;
use janus::workloads::{generate, Instrumentation, Workload, WorkloadConfig};

const TX: usize = 60;

fn cycles(w: Workload, mode: SystemMode, instrumentation: Instrumentation, auto: bool) -> f64 {
    let out = generate(
        w,
        0,
        &WorkloadConfig {
            transactions: TX,
            instrumentation,
            ..WorkloadConfig::default()
        },
    );
    let program = if auto {
        instrument(&out.program).0
    } else {
        out.program
    };
    let mut sys = System::new(JanusConfig::paper(mode, 1));
    sys.warm_caches(out.expected.iter().map(|(a, _)| a));
    for (first, n) in &out.resident {
        sys.warm_caches(first.span(*n));
    }
    sys.run(vec![program]).cycles.0 as f64
}

fn geomean(xs: &[f64]) -> f64 {
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[test]
fn figure9_average_speedup_band() {
    // Paper: 2.35× at one core. Band: [1.9, 3.0].
    let speedups: Vec<f64> = Workload::all()
        .into_iter()
        .map(|w| {
            cycles(w, SystemMode::Serialized, Instrumentation::None, false)
                / cycles(w, SystemMode::Janus, Instrumentation::Manual, false)
        })
        .collect();
    let avg = geomean(&speedups);
    assert!((1.9..3.0).contains(&avg), "fig9 1-core avg = {avg:.2}");
}

#[test]
fn figure9_workload_ordering() {
    // Paper: B-Tree/TATP/TPCC above Hash Table/RB-Tree.
    let speedup = |w| {
        cycles(w, SystemMode::Serialized, Instrumentation::None, false)
            / cycles(w, SystemMode::Janus, Instrumentation::Manual, false)
    };
    let hi = [Workload::BTree, Workload::Tatp, Workload::Tpcc]
        .into_iter()
        .map(speedup)
        .fold(f64::INFINITY, f64::min);
    let lo = [Workload::HashTable, Workload::RbTree]
        .into_iter()
        .map(speedup)
        .fold(0.0, f64::max);
    assert!(
        hi > lo * 0.98,
        "ordering regressed: min(hi-group) {hi:.2} vs max(lo-group) {lo:.2}"
    );
}

#[test]
fn figure10_slowdown_bands() {
    // Paper: serialized 4.93×, Janus 2.09× over the non-blocking ideal.
    let mut serialized = Vec::new();
    let mut janus = Vec::new();
    for w in Workload::all() {
        let ideal = cycles(w, SystemMode::Ideal, Instrumentation::None, false);
        serialized.push(cycles(w, SystemMode::Serialized, Instrumentation::None, false) / ideal);
        janus.push(cycles(w, SystemMode::Janus, Instrumentation::Manual, false) / ideal);
    }
    let s = geomean(&serialized);
    let j = geomean(&janus);
    assert!((3.5..8.0).contains(&s), "serialized slowdown = {s:.2}");
    assert!((1.5..3.5).contains(&j), "janus slowdown = {j:.2}");
    assert!(
        s / j > 1.7,
        "janus must recover most of the gap: {s:.2}/{j:.2}"
    );
}

#[test]
fn figure11_auto_gap_band() {
    // Paper: auto within ~13% of manual on average, with Queue degraded.
    let manual: Vec<f64> = Workload::all()
        .into_iter()
        .map(|w| {
            cycles(w, SystemMode::Serialized, Instrumentation::None, false)
                / cycles(w, SystemMode::Janus, Instrumentation::Manual, false)
        })
        .collect();
    let auto: Vec<f64> = Workload::all()
        .into_iter()
        .map(|w| {
            cycles(w, SystemMode::Serialized, Instrumentation::None, false)
                / cycles(w, SystemMode::Janus, Instrumentation::None, true)
        })
        .collect();
    let gap = geomean(&manual) / geomean(&auto) - 1.0;
    assert!(
        (0.05..0.35).contains(&gap),
        "manual-vs-auto gap = {:.1}%",
        gap * 100.0
    );
}

#[test]
fn serialized_write_latency_matches_table1_arithmetic() {
    // 818 ns of serialized BMO latency per write (Table 1 sums).
    use janus::bmo::latency::BmoLatencies;
    assert_eq!(BmoLatencies::paper().serialized_total().as_ns(), 818.0);
}

#[test]
fn golden_default_stack_critical_write_latencies() {
    // Exact pins, not bands: the registry-composed default stack must
    // reproduce the hard-wired pipeline's numbers cycle-for-cycle.
    // Serialized = Table 1's 818 ns chain = 3272 cycles @4 GHz; the
    // composed dependency graph parallelizes it to a 691 ns = 2764-cycle
    // critical path; full pre-execution leaves zero residual BMO latency
    // at write arrival.
    use janus::bmo::engine::BmoEngine;
    use janus::bmo::latency::BmoLatencies;
    use janus::bmo::{BmoMode, BmoStack};
    use janus::sim::time::Cycles;

    let lat = BmoLatencies::paper();
    let graph = BmoStack::paper().graph(&lat);
    assert_eq!(graph.serial_sum(), Cycles(3272));
    assert_eq!(graph.critical_path(), Cycles(2764));

    let mut serial = BmoEngine::new(BmoStack::paper().graph(&lat), BmoMode::Serialized, 4);
    let j = serial.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
    assert_eq!(serial.completion(j), Some(Cycles(3272)));

    let mut par = BmoEngine::new(BmoStack::paper().graph(&lat), BmoMode::Parallelized, 4);
    let j = par.submit(Cycles(0), Some(Cycles(0)), Some(Cycles(0)), false);
    let done = par.completion(j).expect("inputs supplied");
    assert_eq!(done, Cycles(2764));
    // A write arriving after the pre-execution finished sees residual 0.
    assert_eq!(done.saturating_sub(Cycles(20_000)), Cycles::ZERO);
}
