//! Composability integration tests: non-default BMO stacks through the
//! full system — build, run a workload, crash, recover, verify contents.
//!
//! The registry promise (§4.4 requirement 3) is that programs need no
//! changes when the hardware's BMO set changes: the same workload programs
//! run unmodified under every stack here, and every stack's persistent
//! image recovers to the same functional contents.

use janus::bmo::BmoStack;
use janus::core::config::{JanusConfig, SystemMode};
use janus::core::controller::MemoryController;
use janus::core::system::System;
use janus::sim::time::Cycles;
use janus::workloads::{generate, Instrumentation, Workload, WorkloadConfig};

fn config_for(stack: &str, mode: SystemMode) -> JanusConfig {
    let mut c = JanusConfig::paper(mode, 1);
    c.bmo_stack = BmoStack::parse(stack)
        .unwrap_or_else(|e| panic!("stack {stack:?}: {e}"))
        .members()
        .to_vec();
    c
}

/// Runs a workload to completion under `stack`, crashes, recovers, and
/// verifies every line of the workload's oracle.
fn run_crash_recover_verify(stack: &str, w: Workload, tx: usize) {
    let out = generate(
        w,
        0,
        &WorkloadConfig {
            transactions: tx,
            instrumentation: Instrumentation::Manual,
            ..WorkloadConfig::default()
        },
    );
    let cfg = config_for(stack, SystemMode::Janus);
    let mut sys = System::new(cfg.clone());
    let (snapshot, root) = sys
        .run_until_crash(vec![out.program], Cycles(u64::MAX / 2))
        .expect("one program per core");
    let rec = MemoryController::recover(&snapshot, cfg, root)
        .unwrap_or_else(|e| panic!("stack [{stack}] {w}: recovery failed: {e}"));
    for (line, expected) in out.expected.iter() {
        assert_eq!(
            &rec.read_value(line),
            expected,
            "stack [{stack}] {w}: line {line} after crash"
        );
    }
}

#[test]
fn encryption_only_stack_end_to_end() {
    run_crash_recover_verify("enc", Workload::ArraySwap, 12);
}

#[test]
fn integrity_plus_ecc_stack_end_to_end() {
    run_crash_recover_verify("int,ecc", Workload::Queue, 12);
}

#[test]
fn dedup_only_stack_end_to_end() {
    run_crash_recover_verify("dedup", Workload::HashTable, 12);
}

#[test]
fn extended_five_bmo_stack_end_to_end() {
    run_crash_recover_verify("enc,int,dedup,comp,wear", Workload::BTree, 12);
}

#[test]
fn all_seven_bmo_stack_end_to_end() {
    run_crash_recover_verify("enc,int,dedup,comp,wear,ecc,oram", Workload::Tatp, 12);
}

#[test]
fn empty_stack_end_to_end() {
    run_crash_recover_verify("none", Workload::ArraySwap, 8);
}

#[test]
fn stacks_agree_functionally_with_the_default() {
    // One workload, many stacks: final NVM contents must be identical —
    // BMOs transform the representation, never the values.
    let out = generate(
        Workload::RbTree,
        0,
        &WorkloadConfig {
            transactions: 15,
            instrumentation: Instrumentation::Manual,
            ..WorkloadConfig::default()
        },
    );
    for stack in ["enc,int,dedup", "enc", "int,ecc", "comp,wear", "oram,dedup"] {
        let mut sys = System::new(config_for(stack, SystemMode::Janus));
        sys.run(vec![out.program.clone()]);
        for (line, expected) in out.expected.iter() {
            assert_eq!(
                &sys.read_value(line),
                expected,
                "stack [{stack}]: line {line} diverged"
            );
        }
    }
}

#[test]
fn stack_order_does_not_change_results() {
    // Stack *order* affects sub-op scheduling, never functional results.
    let out = generate(
        Workload::Queue,
        0,
        &WorkloadConfig {
            transactions: 10,
            instrumentation: Instrumentation::Manual,
            ..WorkloadConfig::default()
        },
    );
    for stack in ["dedup,int,enc", "int,enc,dedup", "dedup,enc,int"] {
        let mut sys = System::new(config_for(stack, SystemMode::Serialized));
        sys.run(vec![out.program.clone()]);
        for (line, expected) in out.expected.iter() {
            assert_eq!(
                &sys.read_value(line),
                expected,
                "stack [{stack}]: line {line} diverged"
            );
        }
    }
}
