//! Cross-crate integration: every workload, every system design, one truth.
//!
//! These tests run the full stack — workload generators → (optionally) the
//! compiler pass → the cycle-level system → the functional BMO pipeline —
//! and assert the two global invariants of the reproduction:
//!
//! 1. **Functional equivalence**: all five designs compute identical NVM
//!    contents for the same workload seed (timing optimizations never change
//!    results).
//! 2. **Performance ordering**: Ideal ≤ Janus ≤ Parallelized ≤ Serialized
//!    in cycles, for every workload.

use janus::core::config::{JanusConfig, SystemMode};
use janus::core::system::System;
use janus::instrument::instrument;
use janus::nvm::line::Line;
use janus::workloads::{generate, Instrumentation, Workload, WorkloadConfig};

fn run_variant(
    w: Workload,
    mode: SystemMode,
    instrumentation: Instrumentation,
    auto: bool,
    tx: usize,
) -> (u64, Vec<(janus::nvm::addr::LineAddr, Line)>) {
    let out = generate(
        w,
        0,
        &WorkloadConfig {
            transactions: tx,
            instrumentation,
            ..WorkloadConfig::default()
        },
    );
    let program = if auto {
        instrument(&out.program).0
    } else {
        out.program
    };
    let mut sys = System::new(JanusConfig::paper(mode, 1));
    sys.warm_caches(out.expected.iter().map(|(a, _)| a));
    let report = sys.run(vec![program]);
    // Check against the generator's oracle.
    let mut values = Vec::new();
    for (line, expected) in out.expected.iter() {
        let got = sys.read_value(line);
        assert_eq!(&got, expected, "{w} [{mode}] diverged at {line}");
        values.push((line, got));
    }
    values.sort_by_key(|(a, _)| *a);
    (report.cycles.0, values)
}

#[test]
fn all_workloads_all_designs_agree_functionally() {
    for w in Workload::all() {
        let (_, serialized) =
            run_variant(w, SystemMode::Serialized, Instrumentation::None, false, 12);
        let (_, parallel) = run_variant(
            w,
            SystemMode::Parallelized,
            Instrumentation::None,
            false,
            12,
        );
        let (_, manual) = run_variant(w, SystemMode::Janus, Instrumentation::Manual, false, 12);
        let (_, auto) = run_variant(w, SystemMode::Janus, Instrumentation::None, true, 12);
        let (_, ideal) = run_variant(w, SystemMode::Ideal, Instrumentation::None, false, 12);
        assert_eq!(serialized, parallel, "{w}");
        assert_eq!(serialized, manual, "{w}");
        assert_eq!(serialized, auto, "{w}");
        assert_eq!(serialized, ideal, "{w}");
    }
}

#[test]
fn performance_ordering_holds_for_every_workload() {
    for w in Workload::all() {
        let (s, _) = run_variant(w, SystemMode::Serialized, Instrumentation::None, false, 40);
        let (p, _) = run_variant(
            w,
            SystemMode::Parallelized,
            Instrumentation::None,
            false,
            40,
        );
        let (j, _) = run_variant(w, SystemMode::Janus, Instrumentation::Manual, false, 40);
        let (i, _) = run_variant(w, SystemMode::Ideal, Instrumentation::None, false, 40);
        assert!(
            s > p,
            "{w}: serialized ({s}) must exceed parallelized ({p})"
        );
        assert!(p > j, "{w}: parallelized ({p}) must exceed janus ({j})");
        assert!(j > i, "{w}: janus ({j}) must exceed ideal ({i})");
    }
}

#[test]
fn automated_instrumentation_never_beats_manual_by_much() {
    // The pass is conservative: it may equal but should not dramatically
    // beat best-effort manual placement, and must stay correct.
    for w in Workload::all() {
        let (m, _) = run_variant(w, SystemMode::Janus, Instrumentation::Manual, false, 40);
        let (a, _) = run_variant(w, SystemMode::Janus, Instrumentation::None, true, 40);
        assert!(
            a as f64 >= m as f64 * 0.9,
            "{w}: auto ({a}) implausibly faster than manual ({m})"
        );
    }
}

#[test]
fn loop_bound_workloads_get_no_automated_benefit() {
    // Queue wraps its operations in loop regions; the pass must skip them
    // (§4.5.2), leaving automated performance at the parallelized level.
    let (p, _) = run_variant(
        Workload::Queue,
        SystemMode::Parallelized,
        Instrumentation::None,
        false,
        40,
    );
    let (a, _) = run_variant(
        Workload::Queue,
        SystemMode::Janus,
        Instrumentation::None,
        true,
        40,
    );
    let ratio = p as f64 / a as f64;
    assert!(
        (0.9..1.15).contains(&ratio),
        "queue auto should track parallelized, ratio {ratio}"
    );
}

#[test]
fn multicore_scaling_preserves_correctness_and_counts() {
    for cores in [2usize, 4] {
        let mut sys = System::new(JanusConfig::paper(SystemMode::Janus, cores));
        let mut oracles = Vec::new();
        let mut programs = Vec::new();
        for core in 0..cores {
            let out = generate(
                Workload::Tatp,
                core,
                &WorkloadConfig {
                    transactions: 15,
                    instrumentation: Instrumentation::Manual,
                    ..WorkloadConfig::default()
                },
            );
            programs.push(out.program);
            oracles.push(out.expected);
        }
        let report = sys.run(programs);
        assert_eq!(report.transactions, 15 * cores as u64);
        for oracle in &oracles {
            for (line, expected) in oracle.iter() {
                assert_eq!(&sys.read_value(line), expected, "{cores}-core run");
            }
        }
    }
}

#[test]
fn dedup_ratio_flows_through_to_the_controller() {
    // The observed system-level ratio is offset by undo-log writes (log
    // entries echo existing payload values, which legitimately dedup), so
    // assert monotonicity in the configured payload ratio rather than
    // absolute bands.
    let observe = |ratio: f64| {
        let out = generate(
            Workload::ArraySwap,
            0,
            &WorkloadConfig {
                transactions: 60,
                dedup_ratio: ratio,
                ..WorkloadConfig::default()
            },
        );
        let mut sys = System::new(JanusConfig::paper(SystemMode::Serialized, 1));
        let report = sys.run(vec![out.program]);
        report.dup_writes as f64 / report.writes as f64
    };
    let low = observe(0.0);
    let high = observe(0.75);
    assert!(
        high > low + 0.1,
        "ratio must respond to the knob: {low} vs {high}"
    );
    assert!(
        low < 0.5,
        "all-unique payloads: only log echoes dedup ({low})"
    );
}

#[test]
fn speedup_ordering_is_seed_robust() {
    // The headline result must not be an artifact of one trace: across
    // seeds, Janus beats parallelized beats nothing, on a representative
    // workload pair.
    for seed in [7u64, 1234, 987654321] {
        for w in [Workload::Tatp, Workload::HashTable] {
            let run_seeded = |mode, instrumentation| {
                let out = generate(
                    w,
                    0,
                    &WorkloadConfig {
                        transactions: 30,
                        seed,
                        instrumentation,
                        ..WorkloadConfig::default()
                    },
                );
                let mut sys = System::new(JanusConfig::paper(mode, 1));
                sys.warm_caches(out.expected.iter().map(|(a, _)| a));
                sys.run(vec![out.program]).cycles.0
            };
            let s = run_seeded(SystemMode::Serialized, Instrumentation::None);
            let p = run_seeded(SystemMode::Parallelized, Instrumentation::None);
            let j = run_seeded(SystemMode::Janus, Instrumentation::Manual);
            assert!(s > p && p > j, "{w} seed {seed}: {s} / {p} / {j}");
            let speedup = s as f64 / j as f64;
            assert!(
                (1.5..4.0).contains(&speedup),
                "{w} seed {seed}: speedup {speedup} out of band"
            );
        }
    }
}
