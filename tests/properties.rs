//! Property-based tests over the full stack (janus-check harness).

use janus::bmo::pipeline::BmoPipeline;
use janus::core::config::{JanusConfig, SystemMode};
use janus::core::controller::MemoryController;
use janus::core::ir::ProgramBuilder;
use janus::core::system::System;
use janus::crypto::FingerprintAlgo;
use janus::nvm::{addr::LineAddr, line::Line, store::LineStore};
use janus::sim::time::Cycles;
use janus_check::{forall_cfg, gen, Config, Gen};

const KEY: [u8; 16] = *b"janus-memory-key";

fn cfg() -> Config {
    Config::with_cases(48)
}

fn arb_line() -> Gen<Line> {
    // Small value space so duplicates occur often.
    gen::pair(&gen::range_u64(0..6), &gen::range_u64(0..4))
        .map(|(a, b)| Line::from_words(&[*a, *b]))
}

fn arb_writes() -> Gen<Vec<(u64, Line)>> {
    gen::vec_of(&gen::pair(&gen::range_u64(0..24), &arb_line()), 1..60)
}

/// Any write sequence through the functional pipeline reads back the
/// last value written per line, with full verification.
#[test]
fn pipeline_reads_last_write() {
    forall_cfg(&cfg(), &arb_writes(), |writes| {
        let mut p = BmoPipeline::new(FingerprintAlgo::Md5);
        let mut last = std::collections::HashMap::new();
        for (addr, value) in writes {
            p.write(LineAddr(*addr), *value);
            last.insert(*addr, *value);
        }
        for (addr, value) in last {
            assert_eq!(p.read_verified(LineAddr(addr)).unwrap(), value);
        }
    });
}

/// Replaying only the persisted effects reconstructs an equivalent
/// pipeline (crash anywhere between writes).
#[test]
fn pipeline_recovery_at_any_prefix() {
    let g = gen::pair(&arb_writes(), &gen::range_usize(0..60));
    forall_cfg(&cfg(), &g, |(writes, cut)| {
        let mut p = BmoPipeline::new(FingerprintAlgo::Md5);
        let mut store = LineStore::new();
        let mut root = p.root();
        let cut = (*cut).min(writes.len());
        for (addr, value) in &writes[..cut] {
            let fx = p.write(LineAddr(*addr), *value);
            for (a, l) in &fx.line_writes {
                store.write(*a, *l);
            }
            root = p.root();
        }
        let rec =
            BmoPipeline::recover(&store, FingerprintAlgo::Md5, KEY, root).expect("prefix recovery");
        for addr in 0u64..24 {
            assert_eq!(
                rec.read_verified(LineAddr(addr)).unwrap(),
                p.read(LineAddr(addr)),
                "line {addr}"
            );
        }
    });
}

/// CRC-32 fingerprints may collide, but dedup never corrupts data.
#[test]
fn crc_dedup_is_safe() {
    forall_cfg(&cfg(), &arb_writes(), |writes| {
        let mut p = BmoPipeline::new(FingerprintAlgo::Crc32);
        let mut last = std::collections::HashMap::new();
        for (addr, value) in writes {
            p.write(LineAddr(*addr), *value);
            last.insert(*addr, *value);
        }
        for (addr, value) in last {
            assert_eq!(p.read_verified(LineAddr(addr)).unwrap(), value);
        }
    });
}

/// The Janus timing machinery (pre-execution, IRB, invalidations) never
/// changes functional results, even with deliberately stale
/// pre-execution hints.
#[test]
fn stale_hints_never_corrupt() {
    let hints = gen::vec_of(&gen::pair(&gen::range_u64(0..24), &arb_line()), 0..20);
    let g = gen::pair(&arb_writes(), &hints);
    forall_cfg(&cfg(), &g, |(writes, hints)| {
        let mut b = ProgramBuilder::new();
        // Issue hints for data that may never be written / may mismatch.
        for (addr, value) in hints {
            let obj = b.pre_init();
            b.pre_both(obj, LineAddr(*addr), vec![*value]);
        }
        b.compute(2000);
        for (addr, value) in writes {
            b.store(LineAddr(*addr), *value);
            b.clwb(LineAddr(*addr));
            b.fence();
        }
        let mut sys = System::new(JanusConfig::paper(SystemMode::Janus, 1));
        sys.run(vec![b.build()]);

        let mut last = std::collections::HashMap::new();
        for (addr, value) in writes {
            last.insert(*addr, *value);
        }
        for (addr, value) in last {
            assert_eq!(sys.read_value(LineAddr(addr)), value);
        }
    });
}

/// Full-system crash at an arbitrary cycle always leaves a recoverable,
/// integrity-clean persistent state.
#[test]
fn system_crash_is_always_recoverable() {
    let writes = gen::vec_of(&gen::pair(&gen::range_u64(0..12), &arb_line()), 1..20);
    let g = gen::pair(&writes, &gen::range_u64(1_000..400_000));
    forall_cfg(&cfg(), &g, |(writes, crash_at)| {
        let mut b = ProgramBuilder::new();
        for (addr, value) in writes {
            b.tx_begin();
            b.store(LineAddr(*addr), *value);
            b.clwb(LineAddr(*addr));
            b.fence();
            b.tx_commit();
        }
        let cfg = JanusConfig::paper(SystemMode::Serialized, 1);
        let mut sys = System::new(cfg.clone());
        let (snapshot, root) = sys.run_until_crash(vec![b.build()], Cycles(*crash_at));
        let rec = MemoryController::recover(&snapshot, cfg, root);
        assert!(
            rec.is_ok(),
            "crash at {crash_at} unrecoverable: {:?}",
            rec.err()
        );
    });
}
