//! Property-based tests over the full stack (janus-check harness).

use janus::bmo::pipeline::BmoPipeline;
use janus::core::config::{JanusConfig, SystemMode};
use janus::core::controller::MemoryController;
use janus::core::ir::ProgramBuilder;
use janus::core::system::System;
use janus::crypto::FingerprintAlgo;
use janus::nvm::{addr::LineAddr, line::Line, store::LineStore};
use janus::sim::time::Cycles;
use janus_check::{forall_cfg, gen, Config, Gen};

const KEY: [u8; 16] = *b"janus-memory-key";

fn cfg() -> Config {
    Config::with_cases(48)
}

fn arb_line() -> Gen<Line> {
    // Small value space so duplicates occur often.
    gen::pair(&gen::range_u64(0..6), &gen::range_u64(0..4))
        .map(|(a, b)| Line::from_words(&[*a, *b]))
}

fn arb_writes() -> Gen<Vec<(u64, Line)>> {
    gen::vec_of(&gen::pair(&gen::range_u64(0..24), &arb_line()), 1..60)
}

/// Any write sequence through the functional pipeline reads back the
/// last value written per line, with full verification.
#[test]
fn pipeline_reads_last_write() {
    forall_cfg(&cfg(), &arb_writes(), |writes| {
        let mut p = BmoPipeline::new(FingerprintAlgo::Md5);
        let mut last = std::collections::HashMap::new();
        for (addr, value) in writes {
            p.write(LineAddr(*addr), *value);
            last.insert(*addr, *value);
        }
        for (addr, value) in last {
            assert_eq!(p.read_verified(LineAddr(addr)).unwrap(), value);
        }
    });
}

/// Replaying only the persisted effects reconstructs an equivalent
/// pipeline (crash anywhere between writes).
#[test]
fn pipeline_recovery_at_any_prefix() {
    let g = gen::pair(&arb_writes(), &gen::range_usize(0..60));
    forall_cfg(&cfg(), &g, |(writes, cut)| {
        let mut p = BmoPipeline::new(FingerprintAlgo::Md5);
        let mut store = LineStore::new();
        let mut root = p.root();
        let cut = (*cut).min(writes.len());
        for (addr, value) in &writes[..cut] {
            let fx = p.write(LineAddr(*addr), *value);
            for (a, l) in &fx.line_writes {
                store.write(*a, *l);
            }
            root = p.root();
        }
        let rec =
            BmoPipeline::recover(&store, FingerprintAlgo::Md5, KEY, root).expect("prefix recovery");
        for addr in 0u64..24 {
            assert_eq!(
                rec.read_verified(LineAddr(addr)).unwrap(),
                p.read(LineAddr(addr)),
                "line {addr}"
            );
        }
    });
}

/// CRC-32 fingerprints may collide, but dedup never corrupts data.
#[test]
fn crc_dedup_is_safe() {
    forall_cfg(&cfg(), &arb_writes(), |writes| {
        let mut p = BmoPipeline::new(FingerprintAlgo::Crc32);
        let mut last = std::collections::HashMap::new();
        for (addr, value) in writes {
            p.write(LineAddr(*addr), *value);
            last.insert(*addr, *value);
        }
        for (addr, value) in last {
            assert_eq!(p.read_verified(LineAddr(addr)).unwrap(), value);
        }
    });
}

/// The Janus timing machinery (pre-execution, IRB, invalidations) never
/// changes functional results, even with deliberately stale
/// pre-execution hints.
#[test]
fn stale_hints_never_corrupt() {
    let hints = gen::vec_of(&gen::pair(&gen::range_u64(0..24), &arb_line()), 0..20);
    let g = gen::pair(&arb_writes(), &hints);
    forall_cfg(&cfg(), &g, |(writes, hints)| {
        let mut b = ProgramBuilder::new();
        // Issue hints for data that may never be written / may mismatch.
        for (addr, value) in hints {
            let obj = b.pre_init();
            b.pre_both(obj, LineAddr(*addr), vec![*value]);
        }
        b.compute(2000);
        for (addr, value) in writes {
            b.store(LineAddr(*addr), *value);
            b.clwb(LineAddr(*addr));
            b.fence();
        }
        let mut sys = System::new(JanusConfig::paper(SystemMode::Janus, 1));
        sys.run(vec![b.build()]);

        let mut last = std::collections::HashMap::new();
        for (addr, value) in writes {
            last.insert(*addr, *value);
        }
        for (addr, value) in last {
            assert_eq!(sys.read_value(LineAddr(addr)), value);
        }
    });
}

/// Full-system crash at an arbitrary cycle always leaves a recoverable,
/// integrity-clean persistent state.
#[test]
fn system_crash_is_always_recoverable() {
    let writes = gen::vec_of(&gen::pair(&gen::range_u64(0..12), &arb_line()), 1..20);
    let g = gen::pair(&writes, &gen::range_u64(1_000..400_000));
    forall_cfg(&cfg(), &g, |(writes, crash_at)| {
        let mut b = ProgramBuilder::new();
        for (addr, value) in writes {
            b.tx_begin();
            b.store(LineAddr(*addr), *value);
            b.clwb(LineAddr(*addr));
            b.fence();
            b.tx_commit();
        }
        let cfg = JanusConfig::paper(SystemMode::Serialized, 1);
        let mut sys = System::new(cfg.clone());
        let (snapshot, root) = sys
            .run_until_crash(vec![b.build()], Cycles(*crash_at))
            .expect("one program per core");
        let rec = MemoryController::recover(&snapshot, cfg, root);
        assert!(
            rec.is_ok(),
            "crash at {crash_at} unrecoverable: {:?}",
            rec.err()
        );
    });
}

/// Poisson traffic really has the requested rate: over many arrivals the
/// empirical mean inter-arrival gap lands within 10% of the configured
/// mean, whatever the seed (law of large numbers: at n = 4000 exponential
/// gaps the sample mean's standard error is ~1.6% of the mean).
#[test]
fn poisson_interarrival_mean_matches_the_configured_rate() {
    use janus::sim::rng::SimRng;
    use janus::workloads::traffic::Arrival;

    let g = gen::pair(&gen::range_u64(500..50_000), &gen::any_u64());
    forall_cfg(&cfg(), &g, |(mean, seed)| {
        let n = 4000;
        let arrivals = Arrival::Poisson {
            mean: Cycles(*mean),
        }
        .sample(n, &mut SimRng::new(*seed));
        assert_eq!(arrivals.len(), n);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "sorted");
        // Arrival times are cumulative, so the mean gap is last/(n-1).
        let empirical = arrivals.last().unwrap().0 as f64 / (n - 1) as f64;
        let ratio = empirical / *mean as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "mean {mean} seed {seed}: empirical gap {empirical:.0} off by {ratio:.3}x"
        );
    });
}

/// The Zipfian sampler's rank-frequency curve has the requested slope:
/// a log-log least-squares fit over the top ranks recovers θ within
/// ±0.12 for any θ in [0.4, 0.99) and any seed.
#[test]
fn zipfian_rank_frequency_slope_recovers_theta() {
    use janus::sim::rng::{SimRng, Zipf};

    let g = gen::pair(&gen::range_u64(40..99), &gen::any_u64());
    forall_cfg(&cfg(), &g, |(theta_pct, seed)| {
        let theta = *theta_pct as f64 / 100.0;
        let zipf = Zipf::new(10_000, theta);
        let mut rng = SimRng::new(*seed);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..60_000 {
            *counts.entry(zipf.sample(&mut rng)).or_insert(0u64) += 1;
        }
        let mut freq: Vec<u64> = counts.into_values().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        // Least-squares slope of ln(freq) on ln(rank) over the top 30
        // ranks (the head is where the power law is cleanest at this
        // sample size); for p(k) ∝ k^-θ the slope is -θ.
        let pts: Vec<(f64, f64)> = freq
            .iter()
            .take(30)
            .enumerate()
            .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
            .collect();
        let n = pts.len() as f64;
        let (sx, sy) = pts.iter().fold((0.0, 0.0), |(a, b), p| (a + p.0, b + p.1));
        let (sxx, sxy) = pts
            .iter()
            .fold((0.0, 0.0), |(a, b), p| (a + p.0 * p.0, b + p.0 * p.1));
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        assert!(
            (slope + theta).abs() < 0.12,
            "theta {theta} seed {seed}: fitted slope {slope:.3} (expected {:.3})",
            -theta
        );
    });
}

/// A full multi-tenant open-loop run is a pure function of its seed:
/// replaying any seed gives a byte-identical execution report.
#[test]
fn multi_tenant_runs_replay_deterministically_from_any_seed() {
    use janus::core::irb::IrbPolicy;
    use janus::workloads::traffic::{generate_tenants, Arrival, TenantSpec};
    use janus::workloads::Workload;

    forall_cfg(&Config::with_cases(8), &gen::any_u64(), |seed| {
        let run = || {
            let mut config = JanusConfig::paper(SystemMode::Janus, 2);
            config.irb_policy = IrbPolicy::Banked { per_tenant: 64 };
            let mut sys = System::new(config);
            let specs: Vec<TenantSpec> = (0..3)
                .map(|t| {
                    TenantSpec::new(
                        [Workload::HashTable, Workload::Queue, Workload::Tatp][t],
                        3,
                        Arrival::Poisson {
                            mean: Cycles(8_000),
                        },
                    )
                })
                .collect();
            let streams = generate_tenants(&specs, *seed)
                .into_iter()
                .map(|t| t.stream)
                .collect();
            let report = sys.try_run_tenants(streams).expect("valid streams");
            let mut bytes = Vec::new();
            report.dump(&mut bytes).unwrap();
            bytes
        };
        assert_eq!(run(), run(), "seed {seed} replay diverged");
    });
}
