//! Integration tests for the `janus-lint --fix` engine: golden
//! before/after IR snapshots for every §6 misuse pattern (regenerate with
//! `JANUS_REGEN_GOLDEN=1 cargo test --test lint_fix`), byte-determinism of
//! the rendered programs and diffs, and the differential check against the
//! trace oracle on every fixed program.

use std::path::PathBuf;

use janus::core::ir::{Op, Program, ProgramBuilder};
use janus::instrument::misuse::verify_fix;
use janus::lint::{
    fix_default, lint_default, render_program, seed_stale_hint, unified_diff, FixKind,
};
use janus::nvm::addr::LineAddr;
use janus::nvm::line::Line;

/// One canonical program per §6 misuse pattern (plus the two
/// persist-ordering hazards), paired with the fix kind the engine must
/// choose for it.
fn patterns() -> Vec<(&'static str, Program, FixKind)> {
    let stale = {
        // Wrong hinted value, wide window: the hint is retargeted.
        let mut b = ProgramBuilder::new();
        let obj = b.pre_init();
        b.pre_both(obj, LineAddr(1), vec![Line::splat(1)]);
        b.compute(5000);
        b.persist_store(LineAddr(1), Line::splat(2));
        b.build()
    };
    let useless = {
        // A request no write ever consumes: the pair is deleted.
        let mut b = ProgramBuilder::new();
        let obj = b.pre_init();
        b.pre_both(obj, LineAddr(1), vec![Line::splat(1)]);
        b.compute(100);
        b.build()
    };
    let window = {
        // A request issued after the compute, far too close to its flush,
        // with a dominating address marker available: hoisted.
        let mut b = ProgramBuilder::new();
        b.func("update", |b| {
            b.data_gen(LineAddr(4), vec![Line::splat(1)]);
            b.addr_gen(LineAddr(4), 1);
            b.compute(5000);
            let obj = b.pre_init();
            b.pre_both(obj, LineAddr(4), vec![Line::splat(1)]);
            b.store(LineAddr(4), Line::splat(1));
            b.clwb(LineAddr(4));
            b.fence();
        });
        b.build()
    };
    let redundant = {
        // An exact duplicate of a live request: merged down to one.
        let mut b = ProgramBuilder::new();
        let obj = b.pre_init();
        b.pre_both(obj, LineAddr(1), vec![Line::splat(1)]);
        let obj2 = b.pre_init();
        b.pre_both(obj2, LineAddr(1), vec![Line::splat(1)]);
        b.compute(5000);
        b.persist_store(LineAddr(1), Line::splat(1));
        b.build()
    };
    let persist_dirty = {
        // A line stored after its last flush, still dirty at commit: the
        // engine re-flushes and fences before the commit.
        let mut b = ProgramBuilder::new();
        b.tx_begin();
        b.store(LineAddr(1), Line::splat(1));
        b.clwb(LineAddr(1));
        b.fence();
        b.store(LineAddr(1), Line::splat(2));
        b.tx_commit();
        b.build()
    };
    let persist_unfenced = {
        // A flush never ordered by a fence before commit: fence inserted.
        let mut b = ProgramBuilder::new();
        b.tx_begin();
        b.store(LineAddr(1), Line::splat(1));
        b.clwb(LineAddr(1));
        b.tx_commit();
        b.build()
    };
    vec![
        ("stale", stale, FixKind::Retarget),
        ("useless", useless, FixKind::Delete),
        ("window", window, FixKind::Hoist),
        ("redundant", redundant, FixKind::Delete),
        ("persist_dirty", persist_dirty, FixKind::InsertPersist),
        ("persist_unfenced", persist_unfenced, FixKind::InsertPersist),
    ]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/lint/fix")
        .join(name)
}

fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var("JANUS_REGEN_GOLDEN").is_ok() {
        std::fs::write(&path, rendered).expect("write golden");
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); regenerate with JANUS_REGEN_GOLDEN=1")
    });
    assert_eq!(
        rendered, golden,
        "{name} diverged from its golden snapshot; regenerate with JANUS_REGEN_GOLDEN=1 if intended"
    );
}

/// Golden snapshots: for every misuse pattern, the rendered program before
/// and after `--fix` matches the committed files byte-for-byte, the chosen
/// rewrite is the expected one, and the fixed program lints clean.
#[test]
fn golden_fix_snapshots() {
    for (name, program, kind) in patterns() {
        assert!(
            !lint_default(&program).diagnostics.is_empty(),
            "{name}: the pattern must trip at least one lint"
        );
        let outcome = fix_default(&program);
        assert!(outcome.changed(), "{name}: a fix must be applied");
        assert_eq!(
            outcome.applied[0].kind, kind,
            "{name}: wrong rewrite chosen: {:?}",
            outcome.applied
        );
        assert_eq!(
            outcome.after.diagnostics.len(),
            0,
            "{name}: fixed program must lint clean: {:?}",
            outcome.after.diagnostics
        );
        check_golden(&format!("{name}.before.txt"), &render_program(&program));
        check_golden(
            &format!("{name}.after.txt"),
            &render_program(&outcome.program),
        );
    }
}

/// Byte-determinism: building, fixing, rendering, and diffing the same
/// pattern twice gives identical bytes (the engine holds no hidden state,
/// so this also pins the `--jobs`-independence of the bin's output).
#[test]
fn fix_snapshots_are_byte_deterministic() {
    for (name, program, _) in patterns() {
        let a = fix_default(&program);
        let b = fix_default(&program);
        assert_eq!(
            render_program(&a.program),
            render_program(&b.program),
            "{name}: fixed IR diverged between runs"
        );
        let d1 = unified_diff(
            &render_program(&program),
            &render_program(&a.program),
            "before",
            "after",
        );
        let d2 = unified_diff(
            &render_program(&program),
            &render_program(&b.program),
            "before",
            "after",
        );
        assert_eq!(d1, d2, "{name}: diff diverged between runs");
        assert!(!d1.is_empty(), "{name}: a fix must produce a diff");
    }
}

/// Differential check: every fixed pattern preserves the `Store`/`Load`
/// stream and passes the trace oracle with zero dynamic misuses.
#[test]
fn fixed_patterns_pass_the_trace_oracle() {
    for (name, program, _) in patterns() {
        let outcome = fix_default(&program);
        let v = verify_fix(&program, &outcome.program);
        assert!(
            v.ok(),
            "{name}: store/load stream or oracle count regressed: {v:?}"
        );
        assert!(
            v.clean(),
            "{name}: fixed program has dynamic misuses: {v:?}"
        );
    }
}

/// The seeded CI misuse round-trips: seeding a clean program and fixing it
/// restores the original ops exactly.
#[test]
fn seeded_misuse_round_trips_through_fix() {
    let mut b = ProgramBuilder::new();
    b.compute(50);
    b.persist_store(LineAddr(7), Line::splat(3));
    let clean = b.build();
    let mut seeded = clean.clone();
    seed_stale_hint(&mut seeded);
    assert!(seeded.ops.len() > clean.ops.len());
    let outcome = fix_default(&seeded);
    assert_eq!(outcome.program, clean);
    assert_eq!(render_program(&outcome.program), render_program(&clean));
}

/// Hoist keeps the request's `PRE_INIT` in front of it and lands both at
/// the dominating marker (structural check on top of the golden bytes).
#[test]
fn hoisted_request_sits_at_the_marker() {
    let (_, program, _) = patterns().remove(2);
    let outcome = fix_default(&program);
    let marker = outcome
        .program
        .ops
        .iter()
        .position(|o| matches!(o, Op::AddrGen { .. }))
        .expect("marker survives the fix");
    assert!(matches!(outcome.program.ops[marker + 1], Op::PreInit(_)));
    assert!(matches!(
        outcome.program.ops[marker + 2],
        Op::PreBoth { .. }
    ));
}
