//! Differential tests: the batched event loop against the legacy
//! one-event-at-a-time loop it replaced.
//!
//! The legacy path (`RunSpec::legacy_events` / `System::set_batched(false)`)
//! is kept as the executable specification of the simulator's semantics.
//! The batched hot path — same-cycle cohort draining plus next-event
//! fast-forward — is only a performance transformation, so every observable
//! output must be **byte-identical** between the two:
//!
//! * the human-readable [`ExecutionReport`] text dump,
//! * the exported JSONL metrics line (what `results/` files are built from),
//! * the simulator-only `events` counter (both paths dispatch the same
//!   event sequence, not merely equivalent ones).
//!
//! Coverage: the full fig9 grid (every workload × every fig9 variant) and a
//! property sweep over randomly permuted BMO stacks, which exercises BMO
//! pipelines whose sub-op graphs (and hence event interleavings) differ
//! from the paper's default trio.

use janus_bench::{run_quiet, RunSpec, Variant};
use janus_bmo::BmoId;
use janus_workloads::Workload;

/// Runs `spec` through both dispatch loops and asserts byte-identity of
/// every exported artifact.
fn assert_paths_identical(mut spec: RunSpec) {
    spec.legacy_events = true;
    let legacy = run_quiet(spec.clone());
    spec.legacy_events = false;
    let batched = run_quiet(spec.clone());

    let dump = |r: &janus_bench::RunResult| {
        let mut buf = Vec::new();
        r.report.dump(&mut buf).expect("dump to Vec cannot fail");
        buf
    };
    let label = format!(
        "{} [{}] cores={} stack={:?}",
        spec.workload,
        spec.variant.label(),
        spec.cores,
        spec.bmo_stack
    );
    assert_eq!(
        dump(&legacy),
        dump(&batched),
        "{label}: report text dump diverged between legacy and batched loops"
    );
    assert_eq!(
        legacy.metrics().to_json(),
        batched.metrics().to_json(),
        "{label}: JSONL metrics line diverged between legacy and batched loops"
    );
    assert_eq!(
        legacy.report.events, batched.report.events,
        "{label}: the two loops dispatched different event counts"
    );
}

const FIG9_VARIANTS: [Variant; 3] = [
    Variant::Serialized,
    Variant::Parallelized,
    Variant::JanusManual,
];

/// The full fig9 grid: all seven workloads, all three figure variants.
#[test]
fn batched_loop_matches_legacy_on_full_fig9_sweep() {
    for w in Workload::all() {
        for v in FIG9_VARIANTS {
            let mut spec = RunSpec::new(w, v);
            spec.transactions = 25;
            assert_paths_identical(spec);
        }
    }
}

/// Multi-core runs schedule far more same-cycle cohorts (one Core event per
/// core per cycle), which is exactly what the batch drain reorders if it is
/// ever wrong about FIFO order within a cycle.
#[test]
fn batched_loop_matches_legacy_on_multicore_runs() {
    for cores in [2, 4] {
        let mut spec = RunSpec::new(Workload::Tatp, Variant::JanusManual);
        spec.cores = cores;
        spec.transactions = 20;
        assert_paths_identical(spec);
    }
}

/// Property test: random BMO stack permutations. Each permutation yields a
/// different sub-op dependency graph, bank contention pattern, and event
/// interleaving; the two loops must agree on all of them.
#[test]
fn batched_loop_matches_legacy_on_random_bmo_stack_permutations() {
    let mut state = 0x243f6a8885a308d3u64; // deterministic xorshift seed
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for trial in 0..6 {
        // Fisher–Yates shuffle of the full registry, then keep a random
        // non-empty prefix so short and long stacks are both covered.
        let mut stack = BmoId::ALL.to_vec();
        for i in (1..stack.len()).rev() {
            let j = (rng() % (i as u64 + 1)) as usize;
            stack.swap(i, j);
        }
        let keep = 1 + (rng() % stack.len() as u64) as usize;
        stack.truncate(keep);

        let workload = Workload::all()[trial % Workload::all().len()];
        let mut spec = RunSpec::new(workload, Variant::JanusManual);
        spec.transactions = 12;
        spec.bmo_stack = Some(stack);
        assert_paths_identical(spec);
    }
}
