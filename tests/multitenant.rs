//! Integration tests for the multi-tenant open-loop front end: functional
//! correctness against per-tenant oracles, seed-replay determinism, IRB
//! policy behaviour, and the typed config-validation errors.

use janus::core::config::{JanusConfig, SystemMode};
use janus::core::ir::ProgramBuilder;
use janus::core::irb::IrbPolicy;
use janus::core::system::{ConfigError, ExecutionReport, System};
use janus::core::tenant::TenantStream;
use janus::nvm::addr::LineAddr;
use janus::nvm::line::Line;
use janus::sim::time::Cycles;
use janus::workloads::traffic::{generate_tenants, Arrival, TenantSpec};
use janus::workloads::Workload;

fn specs(tenants: usize, mean: u64) -> Vec<TenantSpec> {
    let mix = [
        Workload::Tatp,
        Workload::HashTable,
        Workload::Queue,
        Workload::Tpcc,
    ];
    (0..tenants)
        .map(|t| {
            TenantSpec::new(
                mix[t % mix.len()],
                6,
                Arrival::Poisson { mean: Cycles(mean) },
            )
        })
        .collect()
}

fn run(cores: usize, tenants: usize, policy: IrbPolicy, seed: u64) -> (System, ExecutionReport) {
    let mut config = JanusConfig::paper(SystemMode::Janus, cores);
    config.irb_policy = policy;
    let mut sys = System::new(config);
    let traffic = generate_tenants(&specs(tenants, 20_000), seed);
    let streams: Vec<TenantStream> = traffic.iter().map(|t| t.stream.clone()).collect();
    let report = sys.try_run_tenants(streams).expect("valid streams");
    // Per-tenant functional oracle: every line each tenant wrote holds its
    // expected final value (tenants occupy disjoint address regions).
    for (tenant, t) in traffic.iter().enumerate() {
        for (line, expected) in t.expected.iter() {
            assert_eq!(
                sys.read_value(line),
                *expected,
                "tenant {tenant} line {line:?}"
            );
        }
    }
    (sys, report)
}

#[test]
fn open_loop_run_completes_every_transaction() {
    let (_, report) = run(4, 4, IrbPolicy::Shared, 42);
    assert_eq!(report.tenants.len(), 4);
    for (i, t) in report.tenants.iter().enumerate() {
        assert_eq!(t.dispatched, 6, "tenant {i}");
        assert_eq!(t.completed, 6, "tenant {i}");
        assert!(t.p50 <= t.p99 && t.p99 <= t.p999, "tenant {i}");
        assert!(t.p999 <= t.max, "tenant {i}");
        assert!(t.mean >= Cycles(1), "tenant {i}: latency can't be zero");
    }
    assert_eq!(report.transactions, 24);
    let jain = report.jain_fairness();
    assert!((0.0..=1.0).contains(&jain), "jain={jain}");
    assert!(
        jain > 0.5,
        "similar tenants should be served fairly: {jain}"
    );
}

#[test]
fn seed_replay_is_byte_identical() {
    for policy in [
        IrbPolicy::Shared,
        IrbPolicy::Banked { per_tenant: 64 },
        IrbPolicy::Partitioned { quota: 64 },
    ] {
        let (_, a) = run(4, 4, policy, 7);
        let (_, b) = run(4, 4, policy, 7);
        let (mut ta, mut tb) = (Vec::new(), Vec::new());
        a.dump(&mut ta).unwrap();
        b.dump(&mut tb).unwrap();
        assert_eq!(ta, tb, "policy {policy} replay diverged");
    }
}

#[test]
fn core_count_does_not_change_the_traffic_only_the_timing() {
    // Same tenant set on 1 vs 4 cores: identical transaction counts and
    // functional outcome (checked inside `run`), and more cores can only
    // help latency-wise on this workload.
    let (_, one) = run(1, 4, IrbPolicy::Shared, 11);
    let (_, four) = run(4, 4, IrbPolicy::Shared, 11);
    assert_eq!(one.transactions, four.transactions);
    let worst = |r: &ExecutionReport| r.tenants.iter().map(|t| t.max).max().unwrap();
    assert!(
        worst(&four) <= worst(&one),
        "4 cores {} vs 1 core {}",
        worst(&four),
        worst(&one)
    );
}

#[test]
fn single_tenant_open_loop_degenerates_to_the_closed_loop_program() {
    // One tenant, arrivals all at cycle 0: the open-loop run executes the
    // same ops in the same order as the closed-loop run of the unsplit
    // program, so writes/transactions match exactly.
    let traffic = generate_tenants(&specs(1, 1), 3);
    let mut stream = traffic[0].stream.clone();
    for a in &mut stream.arrivals {
        *a = Cycles::ZERO;
    }
    let mut open = System::new(JanusConfig::paper(SystemMode::Janus, 1));
    let open_report = open.try_run_tenants(vec![stream.clone()]).unwrap();

    let mut joined = ProgramBuilder::new().build();
    for frag in &stream.txs {
        joined.ops.extend(frag.ops.iter().cloned());
    }
    let mut closed = System::new(JanusConfig::paper(SystemMode::Janus, 1));
    let closed_report = closed.run(vec![joined]);
    assert_eq!(open_report.transactions, closed_report.transactions);
    assert_eq!(open_report.writes, closed_report.writes);
    for (line, expected) in traffic[0].expected.iter() {
        assert_eq!(open.read_value(line), *expected);
        assert_eq!(closed.read_value(line), *expected);
    }
}

#[test]
fn partitioned_quota_records_drops_under_pressure() {
    // A tiny quota forces IRB rejections that the shared policy accepts.
    let run_policy = |policy: IrbPolicy| {
        let mut config = JanusConfig::paper(SystemMode::Janus, 2);
        config.irb_policy = policy;
        let mut sys = System::new(config);
        let sp: Vec<TenantSpec> = (0..4)
            .map(|_| {
                let mut s = TenantSpec::new(
                    Workload::HashTable,
                    8,
                    Arrival::Poisson { mean: Cycles(500) },
                );
                s.instrumentation = janus::workloads::Instrumentation::Manual;
                s
            })
            .collect();
        let streams = generate_tenants(&sp, 9)
            .into_iter()
            .map(|t| t.stream)
            .collect();
        sys.try_run_tenants(streams).unwrap()
    };
    let shared = run_policy(IrbPolicy::Shared);
    let strict = run_policy(IrbPolicy::Partitioned { quota: 1 });
    assert_eq!(shared.irb.2, 0, "shared policy should not drop here");
    assert!(
        strict.irb.2 > 0,
        "quota=1 must reject some inserts: {:?}",
        strict.irb
    );
    assert_eq!(
        shared.transactions, strict.transactions,
        "drops are a performance event, not a correctness one"
    );
}

#[test]
fn config_errors_are_typed_not_panics() {
    let mut sys = System::new(JanusConfig::paper(SystemMode::Janus, 2));
    let err = sys.try_run(vec![]).unwrap_err();
    assert_eq!(
        err,
        ConfigError::ProgramCount {
            programs: 0,
            cores: 2
        }
    );
    assert!(err.to_string().contains("2 configured core"));

    let mut b = ProgramBuilder::new();
    b.persist_store(LineAddr(1), Line::splat(1));
    let err = sys
        .run_until_crash(vec![b.build()], Cycles(1000))
        .unwrap_err();
    assert!(matches!(
        err,
        ConfigError::ProgramCount {
            programs: 1,
            cores: 2
        }
    ));

    assert_eq!(
        sys.try_run_tenants(vec![]).unwrap_err(),
        ConfigError::NoTenants
    );
    let bad_shape = TenantStream {
        arrivals: vec![Cycles(0)],
        txs: vec![],
    };
    assert!(matches!(
        sys.try_run_tenants(vec![bad_shape]).unwrap_err(),
        ConfigError::StreamShape { tenant: 0, .. }
    ));
    let unsorted = TenantStream {
        arrivals: vec![Cycles(10), Cycles(5)],
        txs: vec![Default::default(), Default::default()],
    };
    assert!(matches!(
        sys.try_run_tenants(vec![unsorted]).unwrap_err(),
        ConfigError::UnsortedArrivals { tenant: 0 }
    ));
}
