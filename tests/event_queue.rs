//! Property tests pinning the calendar event queue to its executable
//! specification: the retained binary-heap implementation
//! ([`janus::sim::event::HeapEventQueue`]).
//!
//! The simulator's determinism rests on the queue's total order — `(time,
//! insertion order)` FIFO — so the property drives random schedule/pop
//! interleavings (same-cycle bursts, short device delays, beyond-wheel
//! horizons) through both implementations and asserts identical behavior
//! at every step.

use janus::sim::event::{EventQueue, HeapEventQueue};
use janus::sim::time::Cycles;
use janus_check::{forall_cfg, gen, Config, Gen};

/// `(selector, raw)` pairs: selector < 3 pops, otherwise schedules with a
/// delay drawn from the simulator's characteristic mix.
fn arb_ops() -> Gen<Vec<(u64, u64)>> {
    gen::vec_of(
        &gen::pair(&gen::range_u64(0..10), &gen::range_u64(0..10_000)),
        1..250,
    )
}

fn delay_for(selector: u64, raw: u64) -> u64 {
    match selector {
        3..=5 => 0,        // same-cycle burst
        6 | 7 => raw % 64, // short device delay
        8 => raw % 4096,   // anywhere on the wheel
        _ => 4096 + raw,   // beyond the wheel (overflow path)
    }
}

/// Every interleaving produces the identical pop sequence, clock, length,
/// and peek on both implementations, including the final drain.
#[test]
fn calendar_queue_matches_heap_reference() {
    forall_cfg(&Config::with_cases(64), &arb_ops(), |ops| {
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        let mut next_payload = 0u64;
        for &(selector, raw) in ops {
            if selector < 3 {
                assert_eq!(cal.pop(), heap.pop());
                assert_eq!(cal.now(), heap.now());
            } else {
                let at = Cycles(cal.now().0 + delay_for(selector, raw));
                cal.schedule(at, next_payload);
                heap.schedule(at, next_payload);
                next_payload += 1;
            }
            assert_eq!(cal.len(), heap.len());
            assert_eq!(cal.peek_time(), heap.peek_time());
        }
        while let Some(e) = heap.pop() {
            assert_eq!(cal.pop(), Some(e));
        }
        assert!(cal.is_empty());
    });
}

/// `clear` resets both implementations to an equivalent fresh state:
/// replaying a trace after a clear matches replaying it on new queues.
#[test]
fn cleared_queue_replays_like_fresh() {
    forall_cfg(&Config::with_cases(32), &arb_ops(), |ops| {
        let mut cal: EventQueue<u64> = EventQueue::with_capacity(64);
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::with_capacity(64);
        for round in 0..2 {
            cal.clear();
            heap.clear();
            assert_eq!(cal.now(), Cycles::ZERO, "round {round}");
            let mut next_payload = 0u64;
            for &(selector, raw) in ops {
                if selector < 3 {
                    assert_eq!(cal.pop(), heap.pop(), "round {round}");
                } else {
                    let at = Cycles(cal.now().0 + delay_for(selector, raw));
                    cal.schedule(at, next_payload);
                    heap.schedule(at, next_payload);
                    next_payload += 1;
                }
            }
            while let Some(e) = heap.pop() {
                assert_eq!(cal.pop(), Some(e), "round {round}");
            }
            assert!(cal.is_empty());
        }
    });
}
