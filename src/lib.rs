#![warn(missing_docs)]

//! # Janus — umbrella crate
//!
//! Re-exports the full public API of the Janus reproduction: the cycle-level
//! simulation substrate, the backend-memory-operation (BMO) framework, the
//! Janus pre-execution hardware and software interface, the instrumentation
//! pass, and the workload suite.
//!
//! See the individual crates for details:
//!
//! * [`sim`] — discrete-event engine, clock, queues, statistics.
//! * [`crypto`] — AES-128, SHA-1, MD5, CRC-32 (from scratch).
//! * [`nvm`] — NVM device, caches, write queue, memory bus.
//! * [`bmo`] — sub-operation graphs and the three BMOs of the evaluation.
//! * [`core`] — the Janus mechanism (IRB, queues, software interface,
//!   memory controller, full-system simulator).
//! * [`instrument`] — the automated "compiler pass".
//! * [`workloads`] — the seven transactional NVM workloads.
//! * [`trace`] — cycle-stamped event tracing and machine-readable metrics.
//! * [`lint`] — static analysis over the `PRE_*` interface: misuse lints,
//!   the dependency-graph linter, and automated placement.
//! * [`prof`] — causal profiler: cycle accounting, critical-path
//!   extraction, and tail-latency blame over the trace stream.

pub use janus_bmo as bmo;
pub use janus_core as core;
pub use janus_crypto as crypto;
pub use janus_instrument as instrument;
pub use janus_lint as lint;
pub use janus_nvm as nvm;
pub use janus_prof as prof;
pub use janus_sim as sim;
pub use janus_trace as trace;
pub use janus_workloads as workloads;
